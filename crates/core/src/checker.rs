//! Algorithm 1: the symbolic equivalence-checking worklist (paper, §4.2),
//! with the reachability-pruning and leap optimizations of §5 (and the
//! ability to disable either, for the §7.3 ablation).
//!
//! The algorithm maintains a set `R` of template-guarded configuration
//! relations and a frontier `T`. Each iteration pops `ψ` from `T`; if
//! `⋀R ⊨ ψ` the formula is redundant (`Skip`), otherwise `ψ` joins `R` and
//! its weakest preconditions over all in-scope predecessor template pairs
//! join the frontier (`Extend`). On exhaustion, `⋀R` is the weakest
//! symbolic bisimulation (with leaps) restricted to the reachable pairs,
//! and the query `φ` is checked against it (`Close` / Theorem 5.2).
//!
//! # The guard-indexed, parallel pipeline
//!
//! `R` lives in a [`RelationStore`] indexed by guard, so the premise set
//! of each `Skip` check is fetched in O(matching) instead of scanning all
//! of `R` (stage-1 template filtering makes an entailment depend *only*
//! on same-guard premises). The frontier is processed one generation at a
//! time: all entailment checks of a generation are independent given a
//! snapshot of `R`, so they run concurrently under `std::thread::scope`
//! ([`Options::threads`] / `LEAPFROG_THREADS`), and a sequential
//! *deterministic merge* then replays the generation in frontier order.
//! The merge re-checks a precomputed "not entailed" verdict only when a
//! same-guard relation joined `R` after the snapshot (a "yes" verdict is
//! monotone and always stands), which makes the merged result — `R`,
//! provenance ids, wp successors, certificates and witnesses — bit-for-bit
//! identical to the sequential algorithm at any thread count.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use leapfrog_cex::{build_witness, Refutation};
use leapfrog_logic::confrel::{ConfRel, Pure};
use leapfrog_logic::incremental::SessionPool;
use leapfrog_logic::lower;
use leapfrog_logic::reach::reachable_pairs;
use leapfrog_logic::store::RelationStore;
use leapfrog_logic::templates::{all_templates, Template, TemplatePair};
use leapfrog_logic::wp::wp;
use leapfrog_p4a::ast::{Automaton, StateId, Target};
use leapfrog_p4a::sum::{sum, Sum};
use leapfrog_smt::{CheckResult, QueryStats, SharedBlastCache, SmtSolver};

use crate::certificate::Certificate;
use crate::stats::RunStats;

/// Tuning knobs for the checker. The defaults enable every optimization
/// described in the paper; the §7.3 ablation disables them selectively.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Use bisimulations with leaps (§5.2). Disabling falls back to
    /// bit-by-bit weakest preconditions.
    pub leaps: bool,
    /// Prune the search to template pairs reachable from the query (§5.1).
    /// Disabling considers the full template-pair space.
    pub reach_pruning: bool,
    /// Report non-equivalence as soon as a relation contradicting the
    /// query joins `R`, instead of only at the final `Close` step. Sound:
    /// the final check would fail on the same conjunct.
    pub early_stop: bool,
    /// Abort after this many worklist iterations (`None` = unbounded).
    pub max_iterations: Option<u64>,
    /// Worker threads for frontier-generation entailment checks. `0`
    /// means "use available parallelism"; `1` runs the classic sequential
    /// loop. Results are bit-identical at every setting. Defaults from
    /// `LEAPFROG_THREADS`.
    pub threads: usize,
    /// Treat an unconfirmed refutation witness as a hard error (panic) for
    /// standard language-equivalence queries, where lifting must succeed.
    /// Defaults from `LEAPFROG_STRICT_WITNESS=1`. Relational queries with
    /// a caller-supplied initial relation are exempt: no sound generic
    /// search exists for arbitrary relational conjuncts.
    pub strict_witness: bool,
    /// Clause-budget GC for the per-guard incremental sessions: a session
    /// rebuilds its solver context (re-seeding premises and persisted
    /// CEGAR instantiations) once the clauses retired by finished queries
    /// exceed `ratio ×` its live clauses. `None` disables the GC (contexts
    /// grow without bound, the pre-GC behaviour). Defaults from
    /// `LEAPFROG_SESSION_GC` (`0` = off, a float = the ratio, unset = 4).
    /// Results are bit-identical at every setting.
    pub session_gc_ratio: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            leaps: true,
            reach_pruning: true,
            early_stop: true,
            max_iterations: None,
            threads: threads_from_env(),
            strict_witness: strict_witness_from_env(),
            session_gc_ratio: session_gc_from_env(),
        }
    }
}

/// The default retired-to-live clause ratio that triggers a session
/// context rebuild.
pub const DEFAULT_SESSION_GC_RATIO: f64 = 4.0;

fn session_gc_from_env() -> Option<f64> {
    match std::env::var("LEAPFROG_SESSION_GC") {
        Ok(s) => {
            let t = s.trim();
            if t.eq_ignore_ascii_case("off") {
                return None;
            }
            match t.parse::<f64>() {
                // Any spelling of a non-positive ratio ("0", "0.0", "0e0")
                // disables the GC, matching the documented contract.
                Ok(r) if r.is_finite() && r > 0.0 => Some(r),
                Ok(_) => None,
                Err(_) => Some(DEFAULT_SESSION_GC_RATIO),
            }
        }
        Err(_) => Some(DEFAULT_SESSION_GC_RATIO),
    }
}

fn threads_from_env() -> usize {
    std::env::var("LEAPFROG_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn strict_witness_from_env() -> bool {
    matches!(
        std::env::var("LEAPFROG_STRICT_WITNESS").as_deref(),
        Ok("1") | Ok("true")
    )
}

impl Options {
    /// The worker-thread count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// What a run establishes. Currently only language equivalence carries a
/// dedicated constructor; relational properties are posed by extending the
/// initial relation (see [`Checker::add_init_condition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// `L(q₁, s₁) = L(q₂, s₂)` for all initial stores `s₁`, `s₂`.
    LanguageEquivalence,
}

/// The result of a run.
#[derive(Debug)]
pub enum Outcome {
    /// The property holds; the certificate contains the computed relation.
    Equivalent(Certificate),
    /// The property fails. The refutation carries a concrete witness —
    /// initial stores and a minimized distinguishing packet, confirmed by
    /// replaying the explicit semantics — or, when the countermodel could
    /// not be lifted, the raw symbolic diagnostic.
    NotEquivalent(Refutation),
    /// The iteration budget was exhausted.
    Aborted(String),
}

impl Outcome {
    /// Whether the run proved the property.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Outcome::Equivalent(_))
    }

    /// The refutation witness, when the run refuted the property and the
    /// countermodel lifted into a confirmed counterexample.
    pub fn witness(&self) -> Option<&leapfrog_cex::Witness> {
        match self {
            Outcome::NotEquivalent(r) => r.witness(),
            _ => None,
        }
    }
}

/// The equivalence checker for a pair of P4 automata.
pub struct Checker {
    aut: Automaton,
    sum_info: Sum,
    root: TemplatePair,
    query: ConfRel,
    extra_init: Vec<ConfRel>,
    standard_init: bool,
    options: Options,
    solver: SmtSolver,
    stats: RunStats,
}

impl Checker {
    /// Sets up a check that `left` started in `ql` and `right` started in
    /// `qr` accept the same packets, regardless of initial stores.
    pub fn new(
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
        options: Options,
    ) -> Checker {
        let sum_info = sum(left, right);
        let root = TemplatePair::new(
            Template::start(sum_info.left_state(ql)),
            Template::start(sum_info.right_state(qr)),
        );
        let query = ConfRel::trivial(root);
        Checker {
            aut: sum_info.automaton.clone(),
            sum_info,
            root,
            query,
            extra_init: Vec::new(),
            standard_init: true,
            options,
            solver: SmtSolver::new(),
            stats: RunStats::default(),
        }
    }

    /// The disjoint-sum automaton the check runs over. Initial conditions
    /// and queries are expressed over its headers.
    pub fn sum_automaton(&self) -> &Automaton {
        &self.aut
    }

    /// The sum's identifier mappings (left/right state and header ids).
    pub fn sum_info(&self) -> &Sum {
        &self.sum_info
    }

    /// The root template pair `(⟨q₁, 0⟩, ⟨q₂, 0⟩)`.
    pub fn root(&self) -> TemplatePair {
        self.root
    }

    /// Adds a conjunct to the initial relation `I` (paper §7.1: the
    /// *external filtering* and *relational verification* case studies pose
    /// store conditions on accepting configuration pairs this way).
    pub fn add_init_condition(&mut self, rel: ConfRel) {
        self.extra_init.push(rel);
    }

    /// Replaces the *entire* initial relation `I`, dropping the standard
    /// acceptance-compatibility conditions. This poses a pre-bisimulation
    /// problem for a caller-chosen `I` — the paper's *external filtering*
    /// and *relational verification* case studies (§7.1). The resulting
    /// certificate is marked non-standard: it witnesses closure and
    /// entailment for the given `I`, not language equivalence.
    pub fn replace_init(&mut self, rels: Vec<ConfRel>) {
        self.standard_init = false;
        self.extra_init = rels;
    }

    /// Replaces the query body `φ` (by default `⊤` at the root guard:
    /// equivalence for arbitrary initial stores). Strengthening `φ`
    /// restricts the initial stores the proof covers.
    pub fn set_query_phi(&mut self, phi: Pure, vars: Vec<usize>) {
        self.query = ConfRel {
            guard: self.root,
            vars,
            phi,
        };
    }

    /// Statistics from the last [`Checker::run`].
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The template pairs the search will consider.
    fn scope(&self) -> Vec<TemplatePair> {
        if self.options.reach_pruning {
            reachable_pairs(&self.aut, &[self.root], self.options.leaps)
        } else {
            // The full product of left-side and right-side templates
            // (left-parser states never appear on the right, so restrict
            // each side to its own parser's states plus accept/reject).
            let side_templates = |left: bool| -> Vec<Template> {
                all_templates(&self.aut)
                    .into_iter()
                    .filter(|t| match t.target {
                        Target::State(q) => self.sum_info.is_left_state(q) == left,
                        _ => true,
                    })
                    .collect()
            };
            let ls = side_templates(true);
            let rs = side_templates(false);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for l in &ls {
                for r in &rs {
                    out.push(TemplatePair::new(*l, *r));
                }
            }
            out
        }
    }

    /// Seals the run-wide statistics before returning any outcome, so
    /// `extended` (= |R|), wall time and query counters are populated on
    /// the `Equivalent`, `NotEquivalent` *and* `Aborted` paths alike.
    /// `session_stats` carries the merged entailment-session counters
    /// (main pool plus worker pools, in deterministic slot order).
    fn seal_stats(&mut self, start: Instant, relation_len: usize, session_stats: QueryStats) {
        self.stats.wall_time = start.elapsed();
        let mut queries = self.solver.stats().clone();
        queries.absorb(&session_stats);
        self.stats.queries = queries;
        self.stats.extended = relation_len as u64;
    }

    /// Runs Algorithm 1.
    pub fn run(&mut self) -> Outcome {
        let start = Instant::now();
        let scope = self.scope();
        let threads = self.options.effective_threads();
        self.stats = RunStats::default();
        self.stats.scope_pairs = scope.len();
        self.stats.threads = threads;

        // Initial relation I (Lemma 4.10 / Theorem 5.2): forbid pairs that
        // disagree on acceptance, restricted to the scope; plus any
        // user-supplied conditions.
        //
        // Every relation that enters the frontier gets a provenance record
        // — which relation its weakest precondition was derived from — so a
        // refutation can be lifted into a concrete witness by walking the
        // wp chain back to the violated initial conjunct.
        // The provenance table, the dedup map and the relation store share
        // each relation via `Arc`, so a relation is deep-stored exactly
        // once however many structures (or threads) reference it.
        let mut frontier: VecDeque<usize> = VecDeque::new();
        let mut prov: Vec<(Arc<ConfRel>, Option<usize>)> = Vec::new();
        let mut seen: HashMap<Arc<ConfRel>, usize> = HashMap::new();
        let mut init: Vec<ConfRel> = Vec::new();
        if self.standard_init {
            for p in &scope {
                if p.left.is_accepting() != p.right.is_accepting() {
                    init.push(ConfRel::forbidden(*p));
                }
            }
        }
        init.extend(self.extra_init.iter().cloned());
        for rel in &init {
            if !seen.contains_key(rel) {
                let id = prov.len();
                let shared = Arc::new(rel.clone());
                seen.insert(shared.clone(), id);
                prov.push((shared, None));
                frontier.push_back(id);
            }
        }

        let mut relation = RelationStore::new();
        let cache = self.solver.shared_cache();
        // One persistent session pool for the deterministic main loop and
        // one per worker slot: a guard's premise clauses are lowered,
        // blasted and asserted once per pool for the whole run, and CDCL
        // state accumulates across its queries.
        let mut main_pool = SessionPool::with_gc(self.options.session_gc_ratio);
        let mut worker_pools: Vec<SessionPool> = if threads > 1 {
            (0..threads)
                .map(|_| SessionPool::with_gc(self.options.session_gc_ratio))
                .collect()
        } else {
            Vec::new()
        };
        let pool_stats = |main: &SessionPool, workers: &[SessionPool]| -> QueryStats {
            let mut out = main.stats();
            for w in workers {
                out.absorb(&w.stats());
            }
            out
        };
        let mut batch: Vec<usize> = Vec::new();
        loop {
            // One frontier generation per round: everything currently
            // queued was derived before any of it is processed, so the
            // entailment checks against the current `R` are independent.
            batch.clear();
            batch.extend(frontier.drain(..));
            if batch.is_empty() {
                break;
            }

            // Parallel phase: precompute `⋀R ⊨ ψ` for the whole generation
            // against the immutable snapshot of the store.
            let verdicts: Vec<Option<bool>> = if threads > 1 && batch.len() > 1 {
                let items: Vec<Arc<ConfRel>> = batch.iter().map(|&id| prov[id].0.clone()).collect();
                let verdicts =
                    parallel_entailment(&self.aut, &relation, &items, &mut worker_pools, &cache);
                self.stats.parallel_batches += 1;
                self.stats.parallel_checks += items.len() as u64;
                verdicts.into_iter().map(Some).collect()
            } else {
                vec![None; batch.len()]
            };

            // Deterministic merge: replay the generation in frontier
            // order. `grew` tracks guards that gained a relation after the
            // snapshot — only those can invalidate a "not entailed"
            // verdict ("entailed" is monotone under growing `R`).
            let mut grew: HashSet<TemplatePair> = HashSet::new();
            for (bi, &id) in batch.iter().enumerate() {
                let psi = prov[id].0.clone();
                self.stats.iterations += 1;
                if let Some(limit) = self.options.max_iterations {
                    if self.stats.iterations > limit {
                        let len = relation.len();
                        self.seal_stats(start, len, pool_stats(&main_pool, &worker_pools));
                        return Outcome::Aborted(format!(
                            "iteration budget {limit} exhausted with |R| = {len}"
                        ));
                    }
                }
                self.stats.max_formula_size = self.stats.max_formula_size.max(psi.phi.size());

                self.stats.entailment_checks += 1;
                self.stats.premises_matched += relation.matching_count(psi.guard) as u64;
                self.stats.premises_total += relation.len() as u64;
                let entailed = match verdicts[bi] {
                    Some(true) => true,
                    Some(false) if !grew.contains(&psi.guard) => false,
                    precomputed => {
                        if precomputed.is_some() {
                            self.stats.merge_rechecks += 1;
                        }
                        main_pool.check(&self.aut, &relation.matching(psi.guard), &psi, &cache)
                    }
                };
                if entailed {
                    self.stats.skipped += 1;
                    continue;
                }
                // Early failure: ψ will be part of R, and the Close step
                // requires φ ⊨ ψ.
                if self.options.early_stop && psi.guard == self.query.guard {
                    if let Some(refutation) = self.query_violation(&psi, id, &prov) {
                        let len = relation.len();
                        self.seal_stats(start, len, pool_stats(&main_pool, &worker_pools));
                        return Outcome::NotEquivalent(refutation);
                    }
                }
                for pred in &scope {
                    if let Some(chi) = wp(&self.aut, &psi, pred, self.options.leaps) {
                        self.stats.wp_generated += 1;
                        if !seen.contains_key(&chi) {
                            let cid = prov.len();
                            let shared = Arc::new(chi);
                            seen.insert(shared.clone(), cid);
                            prov.push((shared, Some(id)));
                            frontier.push_back(cid);
                        }
                    }
                }
                grew.insert(psi.guard);
                relation.push(psi);
            }
        }

        // Close: φ ⊨ ⋀R, checked conjunct by conjunct (non-matching guards
        // are vacuous after template filtering).
        for rho in relation.iter() {
            if rho.guard != self.query.guard {
                continue;
            }
            let id = seen[rho];
            if let Some(refutation) = self.query_violation(rho, id, &prov) {
                let len = relation.len();
                self.seal_stats(start, len, pool_stats(&main_pool, &worker_pools));
                return Outcome::NotEquivalent(refutation);
            }
        }

        let len = relation.len();
        self.seal_stats(start, len, pool_stats(&main_pool, &worker_pools));
        Outcome::Equivalent(Certificate {
            leaps: self.options.leaps,
            standard_init: self.standard_init,
            query: self.query.clone(),
            init,
            relation: relation.to_vec(),
        })
    }

    /// Checks `φ ⊨ ρ`; on failure lifts the countermodel into a concrete,
    /// confirmed, minimized witness via the counterexample engine. `id`
    /// indexes `prov`, whose parent links trace ρ back through the wp
    /// chain to the initial conjunct it was derived from; the chain shares
    /// the provenance table's relations by `Arc`.
    ///
    /// # Panics
    ///
    /// Panics when [`Options::strict_witness`] is set, the query is a
    /// standard language-equivalence query, and the countermodel could not
    /// be lifted into a confirmed witness.
    fn query_violation(
        &mut self,
        rho: &ConfRel,
        id: usize,
        prov: &[(Arc<ConfRel>, Option<usize>)],
    ) -> Option<Refutation> {
        let q = lower::lower(&self.aut, std::slice::from_ref(&self.query), rho);
        match self.solver.check_valid(&q.decls, &q.goal) {
            CheckResult::Valid => None,
            CheckResult::Invalid(model) => {
                let diagnostic = format!(
                    "query {} does not entail {}\ncountermodel:\n{}",
                    self.query.display(&self.aut),
                    rho.display(&self.aut),
                    model.display(&q.decls)
                );
                let mut chain: Vec<Arc<ConfRel>> = Vec::new();
                let mut cursor = Some(id);
                while let Some(i) = cursor {
                    chain.push(prov[i].0.clone());
                    cursor = prov[i].1;
                }
                let refutation =
                    build_witness(&self.aut, &chain, &q.decls, &q.vars, &model, diagnostic);
                match &refutation {
                    Refutation::Witness(w) => {
                        self.stats.witnesses_confirmed += 1;
                        self.stats.witness_bits_minimized +=
                            (w.original_bits - w.packet.len()) as u64;
                    }
                    Refutation::Unconfirmed { .. } => self.stats.witnesses_unconfirmed += 1,
                }
                if let Some(error) = strict_witness_violation(
                    self.options.strict_witness,
                    self.standard_init,
                    &refutation,
                ) {
                    panic!("{error}");
                }
                Some(refutation)
            }
        }
    }
}

/// The strict-mode decision, factored out for testability: an
/// [`Refutation::Unconfirmed`] under strict mode on a standard query is a
/// hard error (the engine guarantees lifting succeeds there; failure means
/// a checker or engine bug, not a property of the input).
fn strict_witness_violation(
    strict: bool,
    standard_query: bool,
    refutation: &Refutation,
) -> Option<String> {
    match refutation {
        Refutation::Unconfirmed { reason, .. } if strict && standard_query => Some(format!(
            "strict witness mode: refutation of a standard query could not be \
             confirmed by explicit replay ({reason}); this indicates a bug in \
             the checker or the counterexample engine, not in the input parsers"
        )),
        _ => None,
    }
}

/// Precomputes the entailment verdicts of one frontier generation on
/// worker threads against an immutable snapshot of the relation store.
///
/// Scheduling is *work-stealing*: instead of pre-cutting the batch into
/// fixed per-worker chunks (which loses wall-clock whenever one chunk
/// holds the generation's long-tail entailments), every worker drains a
/// shared atomic cursor over the snapshot batch — an idle worker simply
/// claims the next unprocessed item, so the generation finishes when the
/// last *item* does, not when the unluckiest *chunk* does.
///
/// Each worker slot keeps a persistent [`SessionPool`] across batches
/// (premise clauses assert once per slot for the whole run) and all slots
/// share the main solver's blast cache. Verdicts are exact, so the
/// item-to-worker assignment never affects results — only wall-clock
/// time — and the sequential merge stays deterministic.
fn parallel_entailment(
    aut: &Automaton,
    relation: &RelationStore,
    items: &[Arc<ConfRel>],
    worker_pools: &mut [SessionPool],
    cache: &SharedBlastCache,
) -> Vec<bool> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let n = items.len();
    let cursor = AtomicUsize::new(0);
    let verdicts: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    std::thread::scope(|s| {
        for pool in worker_pools.iter_mut() {
            let cursor = &cursor;
            let verdicts = &verdicts;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let psi = &items[i];
                let v = pool.check(aut, &relation.matching(psi.guard), psi, cache);
                verdicts[i].store(v, Ordering::Relaxed);
            });
        }
    });
    verdicts.into_iter().map(AtomicBool::into_inner).collect()
}

/// One-call convenience API: language equivalence with default options.
pub fn check_language_equivalence(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
) -> Outcome {
    Checker::new(left, ql, right, qr, Options::default()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    fn state(aut: &Automaton, name: &str) -> StateId {
        aut.state_by_name(name).unwrap()
    }

    #[test]
    fn chunking_equivalence() {
        // One 4-bit state vs four 1-bit states, both accept everything of
        // length 4.
        let a = parse("parser A { state s { extract(h, 4); goto accept; } }").unwrap();
        let b = parse(
            "parser B {
               state s0 { extract(b0, 1); goto s1 }
               state s1 { extract(b1, 1); goto s2 }
               state s2 { extract(b2, 1); goto s3 }
               state s3 { extract(b3, 1); goto accept }
             }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s0"));
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn branching_equivalence() {
        // Accept packets whose first 2 bits are 11, reading 4 bits total —
        // two different state layouts.
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B {
               state s { extract(pre, 2); goto t }
               state t { extract(suf, 2);
                 select(pre) { 0b11 => accept; _ => reject; } }
             }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s"));
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn inequivalence_detected_with_countermodel() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s"));
        match out {
            Outcome::NotEquivalent(refutation) => {
                let w = refutation
                    .witness()
                    .expect("countermodel should lift to a witness");
                assert!(w.check(), "witness must replay to a disagreement");
                // Both parsers read exactly 2 bits, so the minimized
                // distinguishing packet has exactly 2 bits.
                assert_eq!(w.packet.len(), 2, "{w}");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn sanity_check_without_early_stop_reaches_close() {
        // The paper's sanity check: inequivalent parsers must fail at the
        // Close step when early stopping is off.
        let a = parse("parser A { state s { extract(h, 2); goto accept } }").unwrap();
        let b = parse("parser B { state s { extract(h, 2); goto reject } }").unwrap();
        let opts = Options {
            early_stop: false,
            ..Options::default()
        };
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
        assert!(matches!(c.run(), Outcome::NotEquivalent(_)));
        assert!(c.stats().iterations > 0);
    }

    #[test]
    fn store_dependent_acceptance_is_not_self_equivalent() {
        // This parser branches on bits of `h` never written before use in
        // state t (read of an uninitialized header), so acceptance depends
        // on the initial store: self-comparison with arbitrary stores fails.
        let a = parse(
            "parser A {
               state s { extract(g, 1);
                 select(h[0:0]) { 0b1 => accept; _ => reject; } }
               header h : 4;
             }",
        )
        .unwrap();
        // h is declared but never extracted: the select reads the initial
        // store. Comparing the parser to itself with unconstrained stores
        // must fail (left store may accept while right rejects).
        let out = check_language_equivalence(&a, state(&a, "s"), &a, state(&a, "s"));
        match &out {
            Outcome::NotEquivalent(r) => {
                // The witness must exhibit two initial stores the parser
                // genuinely distinguishes.
                let w = r
                    .witness()
                    .expect("store-dependence witness should confirm");
                assert!(w.check());
                assert_ne!(
                    w.left_store, w.right_store,
                    "stores must differ for a self-comparison refutation"
                );
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn self_equivalence_of_initialized_parser() {
        // The fixed parser writes h before branching: self-comparison
        // succeeds, proving acceptance is store-independent (the paper's
        // header-initialization case study, in miniature).
        let a = parse(
            "parser A {
               state s { extract(g, 1); h := 4w0b0001 ++ g[0:0] ++ 0b000;
                 select(h[0:0]) { 0b0 => accept; _ => reject; } }
               header h : 8;
             }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &a, state(&a, "s"));
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn ablation_options_agree_on_small_input() {
        let a = parse("parser A { state s { extract(h, 3); goto accept } }").unwrap();
        let b = parse(
            "parser B { state s { extract(x, 1); goto t } state t { extract(y, 2); goto accept } }",
        )
        .unwrap();
        for (leaps, pruning) in [(true, true), (true, false), (false, true), (false, false)] {
            let opts = Options {
                leaps,
                reach_pruning: pruning,
                ..Options::default()
            };
            let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
            assert!(c.run().is_equivalent(), "leaps={leaps} pruning={pruning}");
        }
    }

    #[test]
    fn ablation_explores_more_without_optimizations() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 2); goto t }
                        state t { extract(y, 2);
               select(x[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let run = |leaps: bool, pruning: bool| {
            let opts = Options {
                leaps,
                reach_pruning: pruning,
                ..Options::default()
            };
            let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
            assert!(c.run().is_equivalent());
            (c.stats().iterations, c.stats().scope_pairs)
        };
        let (it_full, scope_full) = run(true, true);
        let (it_noleap, _) = run(false, true);
        let (_, scope_nopruning) = run(true, false);
        assert!(it_noleap > it_full, "leaps should reduce iterations");
        assert!(scope_nopruning > scope_full, "pruning should reduce scope");
    }

    #[test]
    fn max_iterations_aborts() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h) { 0b1111 => accept; _ => reject; } } }",
        )
        .unwrap();
        let opts = Options {
            max_iterations: Some(1),
            ..Options::default()
        };
        let mut c = Checker::new(&a, state(&a, "s"), &a, state(&a, "s"), opts);
        assert!(matches!(c.run(), Outcome::Aborted(_)));
    }

    #[test]
    fn extended_stat_populated_on_every_outcome() {
        // Equivalent (a pair with genuine acceptance disagreements in
        // scope, so R is nonempty).
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &a, state(&a, "s"), Options::default());
        assert!(c.run().is_equivalent());
        assert!(c.stats().extended > 0, "{:?}", c.stats());

        // NotEquivalent: |R| must reflect the relations accumulated before
        // the early stop fired.
        let b = parse("parser B { state s { extract(h, 2); goto reject } }").unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), Options::default());
        assert!(matches!(c.run(), Outcome::NotEquivalent(_)));
        assert!(c.stats().extended > 0, "{:?}", c.stats());

        // Aborted: run unbounded first to learn the iteration count, then
        // re-run with a budget one short of it — the field must still be
        // populated (not default-zero-by-omission) and consistent with the
        // skipped/iterations counters.
        let big = parse(
            "parser C { state s { extract(h, 4);
               select(h) { 0b1111 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut probe = Checker::new(
            &big,
            state(&big, "s"),
            &big,
            state(&big, "s"),
            Options::default(),
        );
        assert!(probe.run().is_equivalent());
        let total = probe.stats().iterations;
        assert!(total >= 2);
        let limit = total - 1;
        let opts = Options {
            max_iterations: Some(limit),
            ..Options::default()
        };
        let mut c = Checker::new(&big, state(&big, "s"), &big, state(&big, "s"), opts);
        assert!(matches!(c.run(), Outcome::Aborted(_)));
        let stats = c.stats();
        assert!(stats.extended > 0, "{stats:?}");
        assert_eq!(
            stats.extended + stats.skipped,
            limit,
            "every non-aborting pop either extends or skips: {stats:?}"
        );
    }

    #[test]
    fn thread_counts_agree_on_outcome_and_relation_size() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B {
               state s { extract(pre, 2); goto t }
               state t { extract(suf, 2);
                 select(pre) { 0b11 => accept; _ => reject; } }
             }",
        )
        .unwrap();
        let mut sizes = Vec::new();
        for threads in [1, 2, 8] {
            let opts = Options {
                threads,
                ..Options::default()
            };
            let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
            assert!(c.run().is_equivalent(), "threads={threads}");
            sizes.push((c.stats().extended, c.stats().iterations));
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "thread counts must explore identically: {sizes:?}"
        );
    }

    #[test]
    fn guard_index_avoids_linear_scans() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 2); goto t }
                        state t { extract(y, 2);
               select(x[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), Options::default());
        assert!(c.run().is_equivalent());
        let stats = c.stats();
        assert!(stats.premises_total > 0);
        assert!(
            stats.premises_matched < stats.premises_total,
            "multiple guards in play: the index must skip premises: {stats:?}"
        );
        assert!(stats.index_hit_rate() > 0.0);
    }

    #[test]
    fn strict_witness_decision_table() {
        let unconfirmed = Refutation::Unconfirmed {
            reason: "synthetic".into(),
            report: "synthetic".into(),
        };
        // Hard error only for strict + standard + unconfirmed.
        assert!(strict_witness_violation(true, true, &unconfirmed).is_some());
        assert!(strict_witness_violation(false, true, &unconfirmed).is_none());
        assert!(strict_witness_violation(true, false, &unconfirmed).is_none());
    }

    #[test]
    fn strict_mode_passes_through_confirmed_witnesses() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let opts = Options {
            strict_witness: true,
            ..Options::default()
        };
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
        match c.run() {
            Outcome::NotEquivalent(r) => assert!(r.is_confirmed()),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }
}
