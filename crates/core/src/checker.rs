//! The per-query checker API: Algorithm 1 (paper, §4.2) posed over one
//! pair of P4 automata, with the reachability-pruning and leap
//! optimizations of §5 (and the ability to disable either, for the §7.3
//! ablation).
//!
//! Since the persistent-engine redesign, this module is a *thin wrapper*:
//! a [`Checker`] owns a transient [`Engine`] configured
//! from its [`Options`] and delegates the actual worklist run to it (see
//! [`crate::engine`] for the algorithm and the warm-state machinery).
//! Certificates and witnesses are byte-identical whichever entry point is
//! used — a one-shot [`check_language_equivalence`], a cold engine, or a
//! warm engine re-checking a pair it has seen before (asserted in
//! `tests/engine.rs`).

use leapfrog_cex::Refutation;
use leapfrog_logic::confrel::{ConfRel, Pure};
use leapfrog_logic::templates::TemplatePair;
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::sum::Sum;

use crate::certificate::Certificate;
use crate::engine::{
    portfolio_min_clauses_from_env, session_gc_floor_from_env, session_gc_from_env,
    strict_witness_from_env, threads_from_env, Engine, EngineConfig, PairId, QueryRequest,
};
use crate::stats::RunStats;

/// Tuning knobs for one query. The defaults enable every optimization
/// described in the paper; the §7.3 ablation disables them selectively.
/// [`Options::default`] reads the `LEAPFROG_*` environment variables —
/// the typed, env-free configuration path is
/// [`EngineConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Use bisimulations with leaps (§5.2). Disabling falls back to
    /// bit-by-bit weakest preconditions.
    pub leaps: bool,
    /// Prune the search to template pairs reachable from the query (§5.1).
    /// Disabling considers the full template-pair space.
    pub reach_pruning: bool,
    /// Report non-equivalence as soon as a relation contradicting the
    /// query joins `R`, instead of only at the final `Close` step. Sound:
    /// the final check would fail on the same conjunct.
    pub early_stop: bool,
    /// Abort after this many worklist iterations (`None` = unbounded).
    pub max_iterations: Option<u64>,
    /// Worker threads for frontier-generation entailment checks. `0`
    /// means "use available parallelism"; `1` runs the classic sequential
    /// loop. Results are bit-identical at every setting. Defaults from
    /// `LEAPFROG_THREADS`.
    pub threads: usize,
    /// Treat an unconfirmed refutation witness as a hard error (panic) for
    /// standard language-equivalence queries, where lifting must succeed.
    /// Defaults from `LEAPFROG_STRICT_WITNESS=1`. Relational queries with
    /// a caller-supplied initial relation are exempt: no sound generic
    /// search exists for arbitrary relational conjuncts.
    pub strict_witness: bool,
    /// Clause-budget GC for the per-guard incremental sessions: a session
    /// rebuilds its solver context (re-seeding premises and persisted
    /// CEGAR instantiations) once the clauses retired by finished queries
    /// exceed `ratio ×` its live clauses. `None` disables the GC (contexts
    /// grow without bound, the pre-GC behaviour). Defaults from
    /// `LEAPFROG_SESSION_GC` (`0` = off, a float = the ratio, unset = 4).
    /// Results are bit-identical at every setting.
    pub session_gc_ratio: Option<f64>,
    /// Live-clause floor for the session GC: a context holding fewer live
    /// clauses than this never rebuilds — small cache-served sessions
    /// churn retired clauses quickly, and rebuilding them costs more than
    /// it reclaims. Defaults from `LEAPFROG_SESSION_GC_FLOOR` (unset =
    /// 512). Results are bit-identical at every setting.
    pub session_gc_floor: u64,
    /// Whether the cross-query structural CNF cache is enabled. Defaults
    /// from `LEAPFROG_NO_BLAST_CACHE` (set `=1` to disable). Results are
    /// identical either way.
    pub blast_cache: bool,
    /// Glucose-style two-tier LBD learnt-clause management in the CDCL
    /// core (off falls back to activity-only deletion — the ablation
    /// baseline). Defaults from `LEAPFROG_SAT_LBD` (set `=0` to disable).
    /// Verdicts and witnesses are identical either way; only solver
    /// wall-clock changes.
    pub sat_lbd: bool,
    /// SAT portfolio racing: the number of differently-configured CDCL
    /// lanes racing each sufficiently large entailment solve (first answer
    /// wins, deterministic tie-break, models always from the canonical
    /// lane 0). `0` or `1` disable racing. Defaults from
    /// `LEAPFROG_SAT_PORTFOLIO`. Certificates and witnesses are
    /// byte-identical at every lane count; only wall-clock changes.
    pub sat_portfolio: usize,
    /// Racing floor for the SAT portfolio: entailment solves on contexts
    /// holding fewer live clauses than this run on the canonical lane
    /// alone instead of spawning race threads. Defaults from
    /// `LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES` (unset = 1024). Results are
    /// bit-identical at every setting.
    pub sat_portfolio_min_clauses: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            leaps: true,
            reach_pruning: true,
            early_stop: true,
            max_iterations: None,
            threads: threads_from_env(),
            strict_witness: strict_witness_from_env(),
            session_gc_ratio: session_gc_from_env(),
            session_gc_floor: session_gc_floor_from_env(),
            blast_cache: std::env::var("LEAPFROG_NO_BLAST_CACHE").as_deref() != Ok("1"),
            sat_lbd: std::env::var("LEAPFROG_SAT_LBD").as_deref() != Ok("0"),
            sat_portfolio: std::env::var("LEAPFROG_SAT_PORTFOLIO")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            sat_portfolio_min_clauses: portfolio_min_clauses_from_env(),
        }
    }
}

/// The default retired-to-live clause ratio that triggers a session
/// context rebuild.
pub const DEFAULT_SESSION_GC_RATIO: f64 = 4.0;

impl Options {
    /// The worker-thread count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// What a run establishes. Currently only language equivalence carries a
/// dedicated constructor; relational properties are posed by extending the
/// initial relation (see [`Checker::add_init_condition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// `L(q₁, s₁) = L(q₂, s₂)` for all initial stores `s₁`, `s₂`.
    LanguageEquivalence,
}

/// The result of a run.
#[derive(Debug)]
pub enum Outcome {
    /// The property holds; the certificate contains the computed relation.
    Equivalent(Certificate),
    /// The property fails. The refutation carries a concrete witness —
    /// initial stores and a minimized distinguishing packet, confirmed by
    /// replaying the explicit semantics — or, when the countermodel could
    /// not be lifted, the raw symbolic diagnostic.
    NotEquivalent(Refutation),
    /// The iteration budget was exhausted.
    Aborted(String),
}

impl Outcome {
    /// Whether the run proved the property.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Outcome::Equivalent(_))
    }

    /// The refutation witness, when the run refuted the property and the
    /// countermodel lifted into a confirmed counterexample.
    pub fn witness(&self) -> Option<&leapfrog_cex::Witness> {
        match self {
            Outcome::NotEquivalent(r) => r.witness(),
            _ => None,
        }
    }
}

/// The equivalence checker for a pair of P4 automata: a per-query view
/// over a transient [`Engine`]. Prefer a long-lived engine when checking
/// more than one query — everything a `Checker` learns dies with it.
pub struct Checker {
    engine: Engine,
    pair: PairId,
    extra_init: Vec<ConfRel>,
    standard_init: bool,
    query: ConfRel,
    options: Options,
    stats: RunStats,
}

impl Checker {
    /// Sets up a check that `left` started in `ql` and `right` started in
    /// `qr` accept the same packets, regardless of initial stores.
    pub fn new(
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
        options: Options,
    ) -> Checker {
        let mut engine = Engine::new(EngineConfig::from_options(&options));
        let pair = engine.prepare_pair(left, ql, right, qr);
        let query = ConfRel::trivial(engine.root(pair));
        Checker {
            engine,
            pair,
            extra_init: Vec::new(),
            standard_init: true,
            query,
            options,
            stats: RunStats::default(),
        }
    }

    /// The disjoint-sum automaton the check runs over. Initial conditions
    /// and queries are expressed over its headers.
    pub fn sum_automaton(&self) -> &Automaton {
        self.engine.sum_automaton(self.pair)
    }

    /// The sum's identifier mappings (left/right state and header ids).
    pub fn sum_info(&self) -> &Sum {
        self.engine.sum_info(self.pair)
    }

    /// The root template pair `(⟨q₁, 0⟩, ⟨q₂, 0⟩)`.
    pub fn root(&self) -> TemplatePair {
        self.engine.root(self.pair)
    }

    /// Adds a conjunct to the initial relation `I` (paper §7.1: the
    /// *external filtering* and *relational verification* case studies pose
    /// store conditions on accepting configuration pairs this way).
    pub fn add_init_condition(&mut self, rel: ConfRel) {
        self.extra_init.push(rel);
    }

    /// Replaces the *entire* initial relation `I`, dropping the standard
    /// acceptance-compatibility conditions. This poses a pre-bisimulation
    /// problem for a caller-chosen `I` — the paper's *external filtering*
    /// and *relational verification* case studies (§7.1). The resulting
    /// certificate is marked non-standard: it witnesses closure and
    /// entailment for the given `I`, not language equivalence.
    pub fn replace_init(&mut self, rels: Vec<ConfRel>) {
        self.standard_init = false;
        self.extra_init = rels;
    }

    /// Replaces the query body `φ` (by default `⊤` at the root guard:
    /// equivalence for arbitrary initial stores). Strengthening `φ`
    /// restricts the initial stores the proof covers.
    pub fn set_query_phi(&mut self, phi: Pure, vars: Vec<usize>) {
        self.query = ConfRel {
            guard: self.root(),
            vars,
            phi,
        };
    }

    /// Statistics from the last [`Checker::run`].
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Runs Algorithm 1 (through the owned engine; a repeated `run` on the
    /// same checker replays warm, with identical results).
    pub fn run(&mut self) -> Outcome {
        let request = QueryRequest {
            standard_init: self.standard_init,
            extra_init: self.extra_init.clone(),
            query: self.query.clone(),
            options: self.options,
        };
        let outcome = self.engine.run_prepared(self.pair, &request);
        self.stats = self.engine.last_run_stats().clone();
        outcome
    }
}

/// The strict-mode decision, factored out for testability: an
/// [`Refutation::Unconfirmed`] under strict mode on a standard query is a
/// hard error (the engine guarantees lifting succeeds there; failure means
/// a checker or engine bug, not a property of the input).
pub(crate) fn strict_witness_violation(
    strict: bool,
    standard_query: bool,
    refutation: &Refutation,
) -> Option<String> {
    match refutation {
        Refutation::Unconfirmed { reason, .. } if strict && standard_query => Some(format!(
            "strict witness mode: refutation of a standard query could not be \
             confirmed by explicit replay ({reason}); this indicates a bug in \
             the checker or the counterexample engine, not in the input parsers"
        )),
        _ => None,
    }
}

/// One-call convenience API: language equivalence with default options,
/// answered by a transient engine.
pub fn check_language_equivalence(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
) -> Outcome {
    Checker::new(left, ql, right, qr, Options::default()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    fn state(aut: &Automaton, name: &str) -> StateId {
        aut.state_by_name(name).unwrap()
    }

    #[test]
    fn chunking_equivalence() {
        // One 4-bit state vs four 1-bit states, both accept everything of
        // length 4.
        let a = parse("parser A { state s { extract(h, 4); goto accept; } }").unwrap();
        let b = parse(
            "parser B {
               state s0 { extract(b0, 1); goto s1 }
               state s1 { extract(b1, 1); goto s2 }
               state s2 { extract(b2, 1); goto s3 }
               state s3 { extract(b3, 1); goto accept }
             }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s0"));
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn branching_equivalence() {
        // Accept packets whose first 2 bits are 11, reading 4 bits total —
        // two different state layouts.
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B {
               state s { extract(pre, 2); goto t }
               state t { extract(suf, 2);
                 select(pre) { 0b11 => accept; _ => reject; } }
             }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s"));
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn inequivalence_detected_with_countermodel() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &b, state(&b, "s"));
        match out {
            Outcome::NotEquivalent(refutation) => {
                let w = refutation
                    .witness()
                    .expect("countermodel should lift to a witness");
                assert!(w.check(), "witness must replay to a disagreement");
                // Both parsers read exactly 2 bits, so the minimized
                // distinguishing packet has exactly 2 bits.
                assert_eq!(w.packet.len(), 2, "{w}");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn sanity_check_without_early_stop_reaches_close() {
        // The paper's sanity check: inequivalent parsers must fail at the
        // Close step when early stopping is off.
        let a = parse("parser A { state s { extract(h, 2); goto accept } }").unwrap();
        let b = parse("parser B { state s { extract(h, 2); goto reject } }").unwrap();
        let opts = Options {
            early_stop: false,
            ..Options::default()
        };
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
        assert!(matches!(c.run(), Outcome::NotEquivalent(_)));
        assert!(c.stats().iterations > 0);
    }

    #[test]
    fn store_dependent_acceptance_is_not_self_equivalent() {
        // This parser branches on bits of `h` never written before use in
        // state t (read of an uninitialized header), so acceptance depends
        // on the initial store: self-comparison with arbitrary stores fails.
        let a = parse(
            "parser A {
               state s { extract(g, 1);
                 select(h[0:0]) { 0b1 => accept; _ => reject; } }
               header h : 4;
             }",
        )
        .unwrap();
        // h is declared but never extracted: the select reads the initial
        // store. Comparing the parser to itself with unconstrained stores
        // must fail (left store may accept while right rejects).
        let out = check_language_equivalence(&a, state(&a, "s"), &a, state(&a, "s"));
        match &out {
            Outcome::NotEquivalent(r) => {
                // The witness must exhibit two initial stores the parser
                // genuinely distinguishes.
                let w = r
                    .witness()
                    .expect("store-dependence witness should confirm");
                assert!(w.check());
                assert_ne!(
                    w.left_store, w.right_store,
                    "stores must differ for a self-comparison refutation"
                );
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn self_equivalence_of_initialized_parser() {
        // The fixed parser writes h before branching: self-comparison
        // succeeds, proving acceptance is store-independent (the paper's
        // header-initialization case study, in miniature).
        let a = parse(
            "parser A {
               state s { extract(g, 1); h := 4w0b0001 ++ g[0:0] ++ 0b000;
                 select(h[0:0]) { 0b0 => accept; _ => reject; } }
               header h : 8;
             }",
        )
        .unwrap();
        let out = check_language_equivalence(&a, state(&a, "s"), &a, state(&a, "s"));
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn ablation_options_agree_on_small_input() {
        let a = parse("parser A { state s { extract(h, 3); goto accept } }").unwrap();
        let b = parse(
            "parser B { state s { extract(x, 1); goto t } state t { extract(y, 2); goto accept } }",
        )
        .unwrap();
        for (leaps, pruning) in [(true, true), (true, false), (false, true), (false, false)] {
            let opts = Options {
                leaps,
                reach_pruning: pruning,
                ..Options::default()
            };
            let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
            assert!(c.run().is_equivalent(), "leaps={leaps} pruning={pruning}");
        }
    }

    #[test]
    fn ablation_explores_more_without_optimizations() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 2); goto t }
                        state t { extract(y, 2);
               select(x[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let run = |leaps: bool, pruning: bool| {
            let opts = Options {
                leaps,
                reach_pruning: pruning,
                ..Options::default()
            };
            let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
            assert!(c.run().is_equivalent());
            (c.stats().iterations, c.stats().scope_pairs)
        };
        let (it_full, scope_full) = run(true, true);
        let (it_noleap, _) = run(false, true);
        let (_, scope_nopruning) = run(true, false);
        assert!(it_noleap > it_full, "leaps should reduce iterations");
        assert!(scope_nopruning > scope_full, "pruning should reduce scope");
    }

    #[test]
    fn max_iterations_aborts() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h) { 0b1111 => accept; _ => reject; } } }",
        )
        .unwrap();
        let opts = Options {
            max_iterations: Some(1),
            ..Options::default()
        };
        let mut c = Checker::new(&a, state(&a, "s"), &a, state(&a, "s"), opts);
        assert!(matches!(c.run(), Outcome::Aborted(_)));
    }

    #[test]
    fn extended_stat_populated_on_every_outcome() {
        // Equivalent (a pair with genuine acceptance disagreements in
        // scope, so R is nonempty).
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &a, state(&a, "s"), Options::default());
        assert!(c.run().is_equivalent());
        assert!(c.stats().extended > 0, "{:?}", c.stats());

        // NotEquivalent: |R| must reflect the relations accumulated before
        // the early stop fired.
        let b = parse("parser B { state s { extract(h, 2); goto reject } }").unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), Options::default());
        assert!(matches!(c.run(), Outcome::NotEquivalent(_)));
        assert!(c.stats().extended > 0, "{:?}", c.stats());

        // Aborted: run unbounded first to learn the iteration count, then
        // re-run with a budget one short of it — the field must still be
        // populated (not default-zero-by-omission) and consistent with the
        // skipped/iterations counters.
        let big = parse(
            "parser C { state s { extract(h, 4);
               select(h) { 0b1111 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut probe = Checker::new(
            &big,
            state(&big, "s"),
            &big,
            state(&big, "s"),
            Options::default(),
        );
        assert!(probe.run().is_equivalent());
        let total = probe.stats().iterations;
        assert!(total >= 2);
        let limit = total - 1;
        let opts = Options {
            max_iterations: Some(limit),
            ..Options::default()
        };
        let mut c = Checker::new(&big, state(&big, "s"), &big, state(&big, "s"), opts);
        assert!(matches!(c.run(), Outcome::Aborted(_)));
        let stats = c.stats();
        assert!(stats.extended > 0, "{stats:?}");
        assert_eq!(
            stats.extended + stats.skipped,
            limit,
            "every non-aborting pop either extends or skips: {stats:?}"
        );
    }

    #[test]
    fn thread_counts_agree_on_outcome_and_relation_size() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B {
               state s { extract(pre, 2); goto t }
               state t { extract(suf, 2);
                 select(pre) { 0b11 => accept; _ => reject; } }
             }",
        )
        .unwrap();
        let mut sizes = Vec::new();
        for threads in [1, 2, 8] {
            let opts = Options {
                threads,
                ..Options::default()
            };
            let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
            assert!(c.run().is_equivalent(), "threads={threads}");
            sizes.push((c.stats().extended, c.stats().iterations));
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "thread counts must explore identically: {sizes:?}"
        );
    }

    #[test]
    fn guard_index_avoids_linear_scans() {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 2); goto t }
                        state t { extract(y, 2);
               select(x[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), Options::default());
        assert!(c.run().is_equivalent());
        let stats = c.stats();
        assert!(stats.premises_total > 0);
        assert!(
            stats.premises_matched < stats.premises_total,
            "multiple guards in play: the index must skip premises: {stats:?}"
        );
        assert!(stats.index_hit_rate() > 0.0);
    }

    #[test]
    fn strict_witness_decision_table() {
        let unconfirmed = Refutation::Unconfirmed {
            reason: "synthetic".into(),
            report: "synthetic".into(),
        };
        // Hard error only for strict + standard + unconfirmed.
        assert!(strict_witness_violation(true, true, &unconfirmed).is_some());
        assert!(strict_witness_violation(false, true, &unconfirmed).is_none());
        assert!(strict_witness_violation(true, false, &unconfirmed).is_none());
    }

    #[test]
    fn strict_mode_passes_through_confirmed_witnesses() {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let opts = Options {
            strict_witness: true,
            ..Options::default()
        };
        let mut c = Checker::new(&a, state(&a, "s"), &b, state(&b, "s"), opts);
        match c.run() {
            Outcome::NotEquivalent(r) => assert!(r.is_confirmed()),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn rerun_on_one_checker_is_warm_and_identical() {
        // A second `run` on the same checker replays through the owned
        // engine's warm state: identical certificate, observable reuse.
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h[0:0]) { 0b1 => accept; _ => reject; } } }",
        )
        .unwrap();
        let mut c = Checker::new(&a, state(&a, "s"), &a, state(&a, "s"), Options::default());
        let first = match c.run() {
            Outcome::Equivalent(cert) => cert.to_json(),
            other => panic!("expected Equivalent, got {other:?}"),
        };
        let cold_stats = c.stats().clone();
        assert_eq!(cold_stats.entailment_memo_hits, 0);
        let second = match c.run() {
            Outcome::Equivalent(cert) => cert.to_json(),
            other => panic!("expected Equivalent, got {other:?}"),
        };
        assert_eq!(first, second, "warm re-run must be byte-identical");
        let warm_stats = c.stats();
        assert!(warm_stats.sessions_reused > 0, "{warm_stats:?}");
        assert_eq!(
            warm_stats.entailment_memo_hits, warm_stats.entailment_checks,
            "a warm identical re-run replays every verdict from the memo: {warm_stats:?}"
        );
    }
}
