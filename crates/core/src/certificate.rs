//! Certificates of equivalence and their independent checker.
//!
//! The paper's implementation runs inside Coq and emits proof terms that
//! the Coq kernel re-checks; the search (Ltac + SMT plugin) is untrusted.
//! This reproduction keeps the same architecture: [`crate::Checker::run`]
//! is untrusted search, and [`check`] re-validates its output from scratch
//! against the conditions of Theorem 5.2 (with leaps, §5.3):
//!
//! 1. the reachable template-pair set derived from the query guard is
//!    re-computed and must cover the guards the relation constrains;
//! 2. the initial relation must forbid every reachable accept/non-accept
//!    pair (acceptance compatibility), and `⋀R` must entail every initial
//!    conjunct;
//! 3. `⋀R` must be closed under weakest preconditions over all reachable
//!    predecessor pairs (the bisimulation step condition);
//! 4. the query must entail `⋀R`.
//!
//! The checker recomputes every weakest precondition and discharges every
//! entailment itself, sharing no state with the search. Its trusted base
//! is the logic lowering, the bitvector solver, and the P4A semantics —
//! exactly the components the paper's TCB discussion lists (§6.4), minus
//! the Coq kernel.
//!
//! Certificates serialize to JSON (via the hand-rolled [`crate::json`]
//! module — the offline build has no `serde`), so a proof computed once
//! can be archived and re-checked by a separate process.

use std::fmt;

use leapfrog_logic::confrel::ConfRel;
use leapfrog_logic::lower::entails_stateless;
use leapfrog_logic::reach::reachable_pairs;
use leapfrog_logic::wp::wp;
use leapfrog_p4a::ast::Automaton;

/// A checkable witness that the query relation is contained in a symbolic
/// bisimulation with leaps.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Whether the relation is a bisimulation *with leaps* (affects which
    /// step condition the checker verifies).
    pub leaps: bool,
    /// Whether `init` is the standard acceptance-compatibility relation
    /// (language equivalence) or a caller-supplied relation (a
    /// pre-bisimulation for a relational property; §7.1).
    pub standard_init: bool,
    /// The query `φ` (root guard plus any initial-store constraint).
    pub query: ConfRel,
    /// The initial relation `I` the run started from.
    pub init: Vec<ConfRel>,
    /// The computed relation `R`: `⋀R` is the symbolic bisimulation.
    pub relation: Vec<ConfRel>,
}

impl Certificate {
    /// Serializes the certificate to JSON.
    pub fn to_json(&self) -> String {
        crate::json::certificate_to_value(self).render()
    }

    /// Deserializes a certificate from JSON.
    pub fn from_json(s: &str) -> Result<Certificate, crate::json::JsonError> {
        crate::json::certificate_from_value(&crate::json::parse(s)?)
    }
}

/// Why a certificate failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// A reachable accept/non-accept pair is not forbidden by `I`.
    MissingAcceptanceCondition(String),
    /// `⋀R` does not entail an initial conjunct.
    InitNotEntailed(String),
    /// `⋀R` is not closed under a weakest precondition.
    NotClosed(String),
    /// The query does not entail a relation conjunct.
    QueryNotEntailed(String),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::MissingAcceptanceCondition(s) => {
                write!(f, "initial relation misses acceptance condition at {s}")
            }
            CertificateError::InitNotEntailed(s) => {
                write!(f, "relation does not entail initial condition {s}")
            }
            CertificateError::NotClosed(s) => {
                write!(f, "relation is not closed under WP: {s}")
            }
            CertificateError::QueryNotEntailed(s) => {
                write!(f, "query does not entail {s}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Re-validates a certificate against the sum automaton. See the module
/// docs for the exact conditions. Independent of the search: all weakest
/// preconditions are recomputed and all entailments re-discharged.
pub fn check(aut: &Automaton, cert: &Certificate) -> Result<(), CertificateError> {
    let scope = reachable_pairs(aut, &[cert.query.guard], cert.leaps);

    // (2a) Acceptance compatibility: every reachable pair that disagrees on
    // acceptance must be forbidden by some initial conjunct. Only applies
    // to language-equivalence certificates; custom-`I` certificates
    // witness a pre-bisimulation for their own `I`.
    for p in scope.iter().filter(|_| cert.standard_init) {
        if p.left.is_accepting() != p.right.is_accepting() {
            let covered = cert
                .init
                .iter()
                .any(|i| i.guard == *p && i.phi == leapfrog_logic::confrel::Pure::ff());
            if !covered {
                return Err(CertificateError::MissingAcceptanceCondition(p.display(aut)));
            }
        }
    }

    // (2b) ⋀R entails every initial conjunct.
    for i in &cert.init {
        if !entails_stateless(aut, &cert.relation, i) {
            return Err(CertificateError::InitNotEntailed(i.display(aut)));
        }
    }

    // (3) Step closure: for every ρ ∈ R and reachable predecessor pair,
    // ⋀R ⊨ wp(ρ). Checked in parallel — the obligations are independent.
    let obligations: Vec<ConfRel> = cert
        .relation
        .iter()
        .flat_map(|rho| scope.iter().filter_map(|p| wp(aut, rho, p, cert.leaps)))
        .collect();
    let failure = parallel_find_failure(aut, &cert.relation, &obligations);
    if let Some(bad) = failure {
        return Err(CertificateError::NotClosed(bad.display(aut)));
    }

    // (4) φ ⊨ ⋀R.
    for rho in &cert.relation {
        if rho.guard == cert.query.guard
            && !entails_stateless(aut, std::slice::from_ref(&cert.query), rho)
        {
            return Err(CertificateError::QueryNotEntailed(rho.display(aut)));
        }
    }
    Ok(())
}

/// Checks the entailment obligations across worker threads, returning the
/// *lowest-index* failing obligation (if any). Deterministic: whichever
/// worker wins the race, the reported failure is the same one a sequential
/// sweep would find, so error messages are stable across runs and match
/// the independent `leapfrog-certcheck` checker obligation-for-obligation.
fn parallel_find_failure(
    aut: &Automaton,
    relation: &[ConfRel],
    obligations: &[ConfRel],
) -> Option<ConfRel> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    if workers <= 1 || obligations.len() < 4 {
        return obligations
            .iter()
            .find(|ob| !entails_stateless(aut, relation, ob))
            .cloned();
    }
    let failed: std::sync::Mutex<Option<(usize, ConfRel)>> = std::sync::Mutex::new(None);
    let chunk = obligations.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (c, part) in obligations.chunks(chunk).enumerate() {
            let failed = &failed;
            s.spawn(move || {
                for (i, ob) in part.iter().enumerate() {
                    let index = c * chunk + i;
                    // A recorded failure below our position makes the rest
                    // of this chunk irrelevant; one at a higher position
                    // can still be improved on.
                    if matches!(&*failed.lock().unwrap(), Some((best, _)) if *best < index) {
                        return;
                    }
                    if !entails_stateless(aut, relation, ob) {
                        let mut slot = failed.lock().unwrap();
                        if !matches!(&*slot, Some((best, _)) if *best < index) {
                            *slot = Some((index, ob.clone()));
                        }
                        return;
                    }
                }
            });
        }
    });
    failed.into_inner().unwrap().map(|(_, ob)| ob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Checker, Options, Outcome};
    use leapfrog_logic::confrel::{BitExpr, Pure, Side};
    use leapfrog_p4a::surface::parse;

    fn certified_pair() -> (Automaton, Certificate) {
        let a = parse(
            "parser A { state s { extract(h, 2);
               select(h) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(x, 1); goto t }
                        state t { extract(y, 1);
               select(x, y) { (0b1, 0b1) => accept; (_, _) => reject; } } }",
        )
        .unwrap();
        let mut c = Checker::new(
            &a,
            a.state_by_name("s").unwrap(),
            &b,
            b.state_by_name("s").unwrap(),
            Options::default(),
        );
        let aut = c.sum_automaton().clone();
        match c.run() {
            Outcome::Equivalent(cert) => (aut, cert),
            other => panic!("expected equivalence, got {other:?}"),
        }
    }

    #[test]
    fn genuine_certificate_checks() {
        let (aut, cert) = certified_pair();
        assert_eq!(check(&aut, &cert), Ok(()));
    }

    #[test]
    fn json_roundtrip_preserves_checkability() {
        let (aut, cert) = certified_pair();
        let json = cert.to_json();
        let back = Certificate::from_json(&json).unwrap();
        assert_eq!(check(&aut, &back), Ok(()));
    }

    #[test]
    fn tampered_relation_fails_closure_or_init() {
        let (aut, mut cert) = certified_pair();
        // Drop the relation entirely: acceptance conditions in I are no
        // longer entailed.
        cert.relation.clear();
        assert!(check(&aut, &cert).is_err());
    }

    #[test]
    fn tampered_init_fails_acceptance_cover() {
        let (aut, mut cert) = certified_pair();
        cert.init.retain(|i| i.phi != Pure::ff());
        assert!(matches!(
            check(&aut, &cert),
            Err(CertificateError::MissingAcceptanceCondition(_))
        ));
    }

    #[test]
    fn strengthened_query_still_checks_but_weakened_relation_fails() {
        let (aut, mut cert) = certified_pair();
        // Injecting a bogus conjunct that R does not entail breaks closure
        // (its WPs are not entailed) or the query check.
        let guard = cert.query.guard;
        let h = aut.header_by_name("l.h").unwrap();
        cert.relation.push(ConfRel {
            guard,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Hdr(Side::Left, h),
                BitExpr::Lit("11".parse().unwrap()),
            ),
        });
        assert!(check(&aut, &cert).is_err());
    }

    #[test]
    fn closure_failure_is_deterministic() {
        // Two independently-failing bogus conjuncts: whichever worker
        // races ahead, the reported failure must be the lowest-index
        // obligation, i.e. the same error every run.
        let (aut, cert) = certified_pair();
        let guard = cert.query.guard;
        let h = aut.header_by_name("l.h").unwrap();
        let bogus = |bits: &str| ConfRel {
            guard,
            vars: vec![],
            phi: Pure::eq(
                BitExpr::Hdr(Side::Left, h),
                BitExpr::Lit(bits.parse().unwrap()),
            ),
        };
        let mut tampered = cert.clone();
        tampered.relation.push(bogus("11"));
        tampered.relation.push(bogus("00"));
        let first = check(&aut, &tampered).unwrap_err();
        for _ in 0..10 {
            assert_eq!(check(&aut, &tampered).unwrap_err(), first);
        }
    }
}
