//! Leapfrog: push-button equivalence checking for protocol parsers.
//!
//! This crate is the top of the reproduction of *"Leapfrog: Certified
//! Equivalence for Protocol Parsers"* (PLDI 2022): the symbolic worklist
//! algorithm (Algorithm 1) that computes the weakest symbolic bisimulation
//! with leaps over a pair of P4 automata, discharging entailments through
//! the `leapfrog-logic` lowering chain and the `leapfrog-smt` bitvector
//! solver.
//!
//! # Quick start
//!
//! ```
//! use leapfrog::{Checker, Options, Outcome};
//! use leapfrog_p4a::surface::parse;
//!
//! let a = parse("parser A { state s { extract(h, 2); goto accept; } }").unwrap();
//! let b = parse("parser B { state s { extract(g, 1); goto t; } \
//!                           state t { extract(k, 1); goto accept; } }").unwrap();
//! let sa = a.state_by_name("s").unwrap();
//! let sb = b.state_by_name("s").unwrap();
//! let mut checker = Checker::new(&a, sa, &b, sb, Options::default());
//! match checker.run() {
//!     Outcome::Equivalent(cert) => {
//!         assert!(leapfrog::certificate::check(&checker.sum_automaton(), &cert).is_ok());
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```
//!
//! # Relational properties
//!
//! Beyond language equivalence, the initial relation can be extended with
//! store conditions ([`Checker::add_init_condition`]) to verify the paper's
//! *external filtering* and *relational verification* case studies (§7.1),
//! and the query can be weakened to check store-independence of acceptance
//! (the *header initialization* case study).
//!
//! # Certificates
//!
//! The paper produces Coq proof terms; an uncertified Rust port cannot.
//! Instead, a successful run yields a serializable [`Certificate`]
//! containing the computed relation `R`, and [`certificate::check`]
//! re-validates — from scratch, using only the logic and solver crates —
//! that `⋀R` is a symbolic bisimulation with leaps entailing the query.
//! The checker plays the role of the Coq kernel: the search is untrusted.

pub mod certificate;
pub mod checker;
pub mod explicit;
pub mod json;
pub mod stats;

pub use certificate::{Certificate, CertificateError};
pub use checker::{Checker, Options, Outcome, Property};
pub use explicit::{check_explicit, ExplicitResult};
pub use stats::RunStats;
