//! Leapfrog: push-button equivalence checking for protocol parsers.
//!
//! This crate is the top of the reproduction of *"Leapfrog: Certified
//! Equivalence for Protocol Parsers"* (PLDI 2022): the symbolic worklist
//! algorithm (Algorithm 1) that computes the weakest symbolic bisimulation
//! with leaps over a pair of P4 automata, discharging entailments through
//! the `leapfrog-logic` lowering chain and the `leapfrog-smt` bitvector
//! solver.
//!
//! # Quick start: the persistent engine
//!
//! The primary entry point is the [`Engine`]: built once from a typed
//! [`EngineConfig`], it keeps every cross-query structure warm — the
//! shared CNF cache, per-pair sums and reachability sets, per-guard
//! solver sessions and entailment-verdict memos — so repeated and batched
//! queries get cheaper over time. Results never depend on warmth.
//!
//! ```
//! use leapfrog::{Engine, EngineConfig, Outcome};
//! use leapfrog_p4a::surface::parse;
//!
//! let a = parse("parser A { state s { extract(h, 2);
//!                  select(h[0:0]) { 0b1 => accept; _ => reject; } } }").unwrap();
//! let b = parse("parser B { state s { extract(g, 1); goto t; }
//!                           state t { extract(k, 1);
//!                  select(g) { 0b1 => accept; _ => reject; } } }").unwrap();
//! let sa = a.state_by_name("s").unwrap();
//! let sb = b.state_by_name("s").unwrap();
//!
//! let mut engine = EngineConfig::new().threads(1).build();
//! assert!(engine.check(&a, sa, &b, sb).is_equivalent());
//! // The second check of the same pair replays warm: the sum and
//! // reachability sets are served from the engine's memos, the guard
//! // sessions are still resident, and every recorded entailment verdict
//! // answers without touching the solver.
//! assert!(engine.check(&a, sa, &b, sb).is_equivalent());
//! let warm = engine.last_run_stats();
//! assert!(warm.sessions_reused > 0 && warm.sum_cache_hits > 0);
//! assert_eq!(warm.entailment_memo_hits, warm.entailment_checks);
//! ```
//!
//! The per-query [`Checker`] (and [`checker::check_language_equivalence`])
//! remain as thin wrappers over a transient engine:
//!
//! ```
//! use leapfrog::{Checker, Options, Outcome};
//! use leapfrog_p4a::surface::parse;
//!
//! let a = parse("parser A { state s { extract(h, 2); goto accept; } }").unwrap();
//! let b = parse("parser B { state s { extract(g, 1); goto t; } \
//!                           state t { extract(k, 1); goto accept; } }").unwrap();
//! let sa = a.state_by_name("s").unwrap();
//! let sb = b.state_by_name("s").unwrap();
//! let mut checker = Checker::new(&a, sa, &b, sb, Options::default());
//! match checker.run() {
//!     Outcome::Equivalent(cert) => {
//!         assert!(leapfrog::certificate::check(&checker.sum_automaton(), &cert).is_ok());
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```
//!
//! # Relational properties
//!
//! Beyond language equivalence, the initial relation can be extended with
//! store conditions ([`Checker::add_init_condition`]) to verify the paper's
//! *external filtering* and *relational verification* case studies (§7.1),
//! and the query can be weakened to check store-independence of acceptance
//! (the *header initialization* case study).
//!
//! # Certificates
//!
//! The paper produces Coq proof terms; an uncertified Rust port cannot.
//! Instead, a successful run yields a serializable [`Certificate`]
//! containing the computed relation `R`, and [`certificate::check`]
//! re-validates — from scratch, using only the logic and solver crates —
//! that `⋀R` is a symbolic bisimulation with leaps entailing the query.
//! The checker plays the role of the Coq kernel: the search is untrusted.

pub mod certificate;
pub mod checker;
pub mod engine;
pub mod explicit;
pub mod json;
pub mod stats;

pub use certificate::{Certificate, CertificateError};
pub use checker::{Checker, Options, Outcome, Property};
pub use engine::{
    route_fingerprint, Engine, EngineConfig, EngineStats, PairId, QueryRequest, QuerySpec,
    WitnessSink,
};
pub use explicit::{check_explicit, ExplicitResult};
pub use stats::RunStats;
