//! The persistent equivalence-checking engine: the serving unit of the
//! reproduction.
//!
//! The paper's checker is query-oriented — one equivalence question, one
//! certificate or witness — but a service answering many queries should
//! not tear down everything it learnt after each one. An [`Engine`] is
//! built once from a typed [`EngineConfig`] and owns the long-lived state
//! that earlier PRs introduced for *intra*-query reuse, promoted to
//! *inter*-query scope:
//!
//! * the cross-query structural CNF cache ([`SharedBlastCache`]), shared
//!   by every query, worker thread and session the engine ever runs;
//! * the cross-session instantiation ledger ([`InstLedger`]): `∀`-block
//!   validation verdicts keyed by canonical block identity and support
//!   valuation, so sessions sharing a guard shape — across pools, threads
//!   and queries — never re-solve a validation;
//! * memoized per-pair artifacts: the disjoint-sum construction, the
//!   reachable template-pair sets and the in-scope template lists, interned
//!   by automaton pair ([`Engine::prepare_pair`]);
//! * warm per-guard [`SessionPool`]s plus an exact entailment-verdict memo
//!   per query shape: re-checking a pair replays the recorded `Skip`
//!   verdicts without touching the solver, and the sessions stay resident
//!   for any check that diverges.
//!
//! [`Engine::check`] answers one language-equivalence query;
//! [`Engine::check_batch`] schedules many queries over the existing
//! work-stealing worker pool — parallelism *across* queries rather than
//! only inside one frontier generation. Results are bit-identical to the
//! one-shot path: certificates and witnesses do not depend on engine
//! warmth, thread count, batching, or cache state (asserted in
//! `tests/engine.rs`).
//!
//! The historical [`Checker`](crate::Checker) and
//! [`check_language_equivalence`](crate::checker::check_language_equivalence)
//! entry points are thin wrappers over a transient engine.
//!
//! Long-running engines additionally support **capacity bounds and
//! persistence**: [`EngineConfig::warm_capacity`] (env `LEAPFROG_WARM_CAP`,
//! `0` = unbounded) puts an LRU eviction bound on every warm-state map —
//! query-shape memos, resident guard sessions, interned pair artifacts and
//! the instantiation ledger — with eviction counters surfaced in
//! [`EngineStats`]; and [`Engine::save_state`] /
//! [`EngineConfig::with_state_dir`] serialize and reload the blast-cache
//! templates, the ledger verdicts, the entailment-verdict memos and the
//! witness corpus, so a restarted service warms up from disk instead of
//! re-solving from cold. Neither knob ever changes results — eviction and
//! persistence trade wall-clock only (asserted in `tests/serve.rs`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use leapfrog_cex::{build_witness, Refutation, Witness};
use leapfrog_logic::confrel::ConfRel;
use leapfrog_logic::incremental::{SessionConfig, SessionPool};
use leapfrog_logic::lower;
use leapfrog_logic::reach::reachable_pairs;
use leapfrog_logic::store::RelationStore;
use leapfrog_logic::templates::{all_templates, Template, TemplatePair};
use leapfrog_logic::wp::wp;
use leapfrog_obs::{trace, Phase};
use leapfrog_p4a::ast::{Automaton, StateId, Target};
use leapfrog_p4a::sum::{sum, Sum};
use leapfrog_smt::{
    CheckResult, InstLedger, PortfolioConfig, QueryStats, SharedBlastCache, SmtSolver,
    SolverConfig, DEFAULT_PORTFOLIO_MIN_CLAUSES, LBD_BUCKETS, MAX_PORTFOLIO_LANES,
};

use crate::certificate::Certificate;
use crate::checker::{strict_witness_violation, Options, Outcome};
use crate::json::{self, Value};
use crate::stats::RunStats;

/// The default live-clause floor under which the session GC never
/// rebuilds a context.
pub const DEFAULT_SESSION_GC_FLOOR: u64 = 512;

/// File inside a state directory holding the blast-cache CNF templates.
pub const STATE_BLAST_FILE: &str = "blast_cache.txt";
/// File inside a state directory holding the instantiation-ledger verdicts.
pub const STATE_LEDGER_FILE: &str = "inst_ledger.txt";
/// File inside a state directory holding the entailment-verdict memos.
pub const STATE_MEMO_FILE: &str = "warm_memos.json";
/// File inside a state directory holding the serialized witness corpus.
pub const STATE_CORPUS_FILE: &str = "corpus.txt";

/// Typed, buildable configuration for an [`Engine`]. Subsumes every
/// `LEAPFROG_*` tuning variable ([`EngineConfig::from_env`] is the compat
/// path); the builder methods are the first-class one.
///
/// | Env var | Config field |
/// |---|---|
/// | `LEAPFROG_THREADS` | [`threads`](Self::threads) |
/// | `LEAPFROG_SESSION_GC` | [`session_gc_ratio`](Self::session_gc_ratio) |
/// | `LEAPFROG_SESSION_GC_FLOOR` | [`session_gc_floor`](Self::session_gc_floor) |
/// | `LEAPFROG_STRICT_WITNESS` | [`strict_witness`](Self::strict_witness) |
/// | `LEAPFROG_NO_BLAST_CACHE` | [`blast_cache`](Self::blast_cache) |
/// | `LEAPFROG_SAT_LBD` | [`sat_lbd`](Self::sat_lbd) |
/// | `LEAPFROG_SAT_PORTFOLIO` | [`sat_portfolio`](Self::sat_portfolio) |
/// | `LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES` | [`sat_portfolio_min_clauses`](Self::sat_portfolio_min_clauses) |
/// | `LEAPFROG_WARM_CAP` | [`warm_capacity`](Self::warm_capacity) |
///
/// Only `leaps`, `reach_pruning`, `early_stop` and `max_iterations`
/// change *what* is computed (they are part of a query's semantic shape);
/// everything else changes how fast.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Use bisimulations with leaps (§5.2).
    pub leaps: bool,
    /// Prune the search to reachable template pairs (§5.1).
    pub reach_pruning: bool,
    /// Report non-equivalence as soon as a contradicting relation joins
    /// `R` instead of only at the final `Close` step.
    pub early_stop: bool,
    /// Abort after this many worklist iterations (`None` = unbounded).
    pub max_iterations: Option<u64>,
    /// Worker threads (`0` = available parallelism). Inside one query they
    /// parallelize frontier generations; across a batch they parallelize
    /// whole queries.
    pub threads: usize,
    /// Hard-error on unconfirmed witnesses for standard queries.
    pub strict_witness: bool,
    /// Session clause-budget GC ratio (`None` = off).
    pub session_gc_ratio: Option<f64>,
    /// Live-clause floor under which a session never rebuilds.
    pub session_gc_floor: u64,
    /// Whether the shared structural CNF cache is enabled.
    pub blast_cache: bool,
    /// Glucose-style two-tier LBD learnt-clause management in the CDCL
    /// core (off = activity-only deletion, the ablation baseline).
    /// Verdicts and witnesses are identical either way.
    pub sat_lbd: bool,
    /// SAT portfolio racing lanes for entailment-session solves: `0`/`1`
    /// run the single canonical solver; `n ≥ 2` race `n`
    /// differently-configured CDCL lanes per sufficiently large solve,
    /// first answer wins. Models are always the canonical lane's, so
    /// certificates and witnesses are byte-identical at every lane count.
    pub sat_portfolio: usize,
    /// Racing floor for the SAT portfolio: an entailment session holding
    /// fewer live clauses than this solves on the canonical lane alone
    /// (thread startup costs more than small instances take to solve).
    /// Results are bit-identical at every setting.
    pub sat_portfolio_min_clauses: usize,
    /// LRU capacity bound on the warm-state maps (`0` = unbounded): at
    /// most this many warm query-shape states, interned pairs, resident
    /// guard sessions per pool and instantiation-ledger entries stay
    /// live; least-recently-used entries beyond the bound are evicted
    /// between runs. Results never depend on eviction.
    pub warm_capacity: usize,
    /// Directory to reload persisted warm state from at construction
    /// (blast-cache templates, ledger verdicts, entailment memos). Written
    /// by [`Engine::save_state`]; a missing directory or file is simply a
    /// cold start.
    pub state_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            leaps: true,
            reach_pruning: true,
            early_stop: true,
            max_iterations: None,
            threads: 0,
            strict_witness: false,
            session_gc_ratio: Some(crate::checker::DEFAULT_SESSION_GC_RATIO),
            session_gc_floor: DEFAULT_SESSION_GC_FLOOR,
            blast_cache: true,
            sat_lbd: true,
            sat_portfolio: 0,
            sat_portfolio_min_clauses: DEFAULT_PORTFOLIO_MIN_CLAUSES,
            warm_capacity: 0,
            state_dir: None,
        }
    }
}

impl EngineConfig {
    /// Pure defaults: every optimization on, auto thread count, GC ratio 4
    /// with a 512-clause floor — independent of the environment.
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// The environment-compat constructor: reads every `LEAPFROG_*`
    /// tuning variable into its config field (see the type-level table).
    pub fn from_env() -> EngineConfig {
        EngineConfig {
            threads: threads_from_env(),
            strict_witness: strict_witness_from_env(),
            session_gc_ratio: session_gc_from_env(),
            session_gc_floor: session_gc_floor_from_env(),
            blast_cache: std::env::var("LEAPFROG_NO_BLAST_CACHE").as_deref() != Ok("1"),
            sat_lbd: std::env::var("LEAPFROG_SAT_LBD").as_deref() != Ok("0"),
            sat_portfolio: std::env::var("LEAPFROG_SAT_PORTFOLIO")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            sat_portfolio_min_clauses: portfolio_min_clauses_from_env(),
            warm_capacity: warm_capacity_from_env(),
            ..EngineConfig::default()
        }
    }

    /// Lifts per-query [`Options`] into an engine configuration (the
    /// compat direction used by the [`Checker`](crate::Checker) wrapper).
    pub fn from_options(o: &Options) -> EngineConfig {
        EngineConfig {
            leaps: o.leaps,
            reach_pruning: o.reach_pruning,
            early_stop: o.early_stop,
            max_iterations: o.max_iterations,
            threads: o.threads,
            strict_witness: o.strict_witness,
            session_gc_ratio: o.session_gc_ratio,
            session_gc_floor: o.session_gc_floor,
            blast_cache: o.blast_cache,
            sat_lbd: o.sat_lbd,
            sat_portfolio: o.sat_portfolio,
            sat_portfolio_min_clauses: o.sat_portfolio_min_clauses,
            ..EngineConfig::default()
        }
    }

    /// Projects this configuration onto per-query [`Options`].
    pub fn options(&self) -> Options {
        Options {
            leaps: self.leaps,
            reach_pruning: self.reach_pruning,
            early_stop: self.early_stop,
            max_iterations: self.max_iterations,
            threads: self.threads,
            strict_witness: self.strict_witness,
            session_gc_ratio: self.session_gc_ratio,
            session_gc_floor: self.session_gc_floor,
            blast_cache: self.blast_cache,
            sat_lbd: self.sat_lbd,
            sat_portfolio: self.sat_portfolio,
            sat_portfolio_min_clauses: self.sat_portfolio_min_clauses,
        }
    }

    /// The worker-thread count this configuration resolves to.
    pub fn effective_threads(&self) -> usize {
        self.options().effective_threads()
    }

    /// Sets the worker-thread count (builder style).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Enables or disables leaps (builder style).
    pub fn leaps(mut self, on: bool) -> Self {
        self.leaps = on;
        self
    }

    /// Enables or disables reachability pruning (builder style).
    pub fn reach_pruning(mut self, on: bool) -> Self {
        self.reach_pruning = on;
        self
    }

    /// Enables or disables early stopping (builder style).
    pub fn early_stop(mut self, on: bool) -> Self {
        self.early_stop = on;
        self
    }

    /// Sets the iteration budget (builder style).
    pub fn max_iterations(mut self, limit: Option<u64>) -> Self {
        self.max_iterations = limit;
        self
    }

    /// Enables or disables strict witness mode (builder style).
    pub fn strict_witness(mut self, on: bool) -> Self {
        self.strict_witness = on;
        self
    }

    /// Sets the session GC ratio (builder style).
    pub fn session_gc_ratio(mut self, ratio: Option<f64>) -> Self {
        self.session_gc_ratio = ratio;
        self
    }

    /// Sets the session GC live-clause floor (builder style).
    pub fn session_gc_floor(mut self, floor: u64) -> Self {
        self.session_gc_floor = floor;
        self
    }

    /// Enables or disables the shared blast cache (builder style).
    pub fn blast_cache(mut self, on: bool) -> Self {
        self.blast_cache = on;
        self
    }

    /// Enables or disables LBD-tiered learnt-clause management in the
    /// CDCL core (builder style).
    pub fn sat_lbd(mut self, on: bool) -> Self {
        self.sat_lbd = on;
        self
    }

    /// Sets the SAT portfolio lane count (builder style; `0`/`1` = no
    /// racing).
    pub fn sat_portfolio(mut self, lanes: usize) -> Self {
        self.sat_portfolio = lanes;
        self
    }

    /// Sets the SAT portfolio racing floor (builder style): sessions with
    /// fewer live clauses than this solve on the canonical lane alone.
    pub fn sat_portfolio_min_clauses(mut self, clauses: usize) -> Self {
        self.sat_portfolio_min_clauses = clauses;
        self
    }

    /// Sets the LRU capacity bound on the warm-state maps (builder style;
    /// `0` = unbounded).
    pub fn warm_capacity(mut self, cap: usize) -> Self {
        self.warm_capacity = cap;
        self
    }

    /// Sets the state directory the engine reloads persisted warm state
    /// from at construction (builder style). Pair with
    /// [`Engine::save_state`] on the way down.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Finishes the builder: a fresh engine owning this configuration.
    pub fn build(self) -> Engine {
        Engine::new(self)
    }
}

pub(crate) fn threads_from_env() -> usize {
    std::env::var("LEAPFROG_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

pub(crate) fn strict_witness_from_env() -> bool {
    matches!(
        std::env::var("LEAPFROG_STRICT_WITNESS").as_deref(),
        Ok("1") | Ok("true")
    )
}

pub(crate) fn session_gc_from_env() -> Option<f64> {
    match std::env::var("LEAPFROG_SESSION_GC") {
        Ok(s) => {
            let t = s.trim();
            if t.eq_ignore_ascii_case("off") {
                return None;
            }
            match t.parse::<f64>() {
                // Any spelling of a non-positive ratio ("0", "0.0", "0e0")
                // disables the GC, matching the documented contract.
                Ok(r) if r.is_finite() && r > 0.0 => Some(r),
                Ok(_) => None,
                Err(_) => Some(crate::checker::DEFAULT_SESSION_GC_RATIO),
            }
        }
        Err(_) => Some(crate::checker::DEFAULT_SESSION_GC_RATIO),
    }
}

pub(crate) fn session_gc_floor_from_env() -> u64 {
    std::env::var("LEAPFROG_SESSION_GC_FLOOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SESSION_GC_FLOOR)
}

pub(crate) fn warm_capacity_from_env() -> usize {
    std::env::var("LEAPFROG_WARM_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

pub(crate) fn portfolio_min_clauses_from_env() -> usize {
    std::env::var("LEAPFROG_SAT_PORTFOLIO_MIN_CLAUSES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_PORTFOLIO_MIN_CLAUSES)
}

/// A handle to an automaton pair interned by [`Engine::prepare_pair`]:
/// its sum, root template pair and scope sets stay resident until the
/// [`EngineConfig::warm_capacity`] LRU bound evicts the pair. Eviction
/// frees the slot for later pairs; a handle held across the eviction is
/// *stale* and panics on use (the generation tag makes the staleness
/// detectable instead of silently resolving to a different pair) — hold
/// handles only across back-to-back calls, or re-intern via
/// `prepare_pair` (idempotent and cheap on a live pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairId(usize, u64);

/// One query for [`Engine::check_batch`]: a named parser pair posing a
/// standard language-equivalence question.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Name used for reporting and witness-corpus recording.
    pub name: String,
    /// The left parser.
    pub left: Automaton,
    /// Start state of the left parser.
    pub ql: StateId,
    /// The right parser.
    pub right: Automaton,
    /// Start state of the right parser.
    pub qr: StateId,
}

impl QuerySpec {
    /// A named language-equivalence query.
    pub fn new(
        name: impl Into<String>,
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
    ) -> QuerySpec {
        QuerySpec {
            name: name.into(),
            left: left.clone(),
            ql,
            right: right.clone(),
            qr,
        }
    }
}

/// A fully elaborated query over a prepared pair — what
/// [`Engine::run_prepared`] executes. The [`Checker`](crate::Checker)
/// wrapper builds one of these from its mutable setup calls; the standard
/// case comes from [`Engine::standard_request`].
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Include the standard acceptance-compatibility initial conditions.
    pub standard_init: bool,
    /// Additional (or, when `standard_init` is false, *replacement*)
    /// initial-relation conjuncts.
    pub extra_init: Vec<ConfRel>,
    /// The query `φ` at the root guard.
    pub query: ConfRel,
    /// Per-query options (semantic knobs + scheduling).
    pub options: Options,
}

/// Recipient for confirmed refutation witnesses found by named checks
/// ([`Engine::check_named`] / [`Engine::check_batch`]). The witness
/// regression corpus in the evaluation suite implements this, so an
/// engine can feed it directly.
pub trait WitnessSink: Send {
    /// Records a confirmed witness under a query name; returns whether
    /// the entry was new.
    fn record(&mut self, name: &str, witness: &Witness) -> bool;

    /// A serialized form of the sink's contents, if it has one —
    /// [`Engine::save_state`] writes it next to the engine's own state so
    /// a witness corpus survives a daemon restart. The default sink has
    /// nothing to persist.
    fn export_text(&self) -> Option<String> {
        None
    }
}

/// Cumulative reuse counters over an engine's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered (including every batch member).
    pub checks: u64,
    /// [`Engine::check_batch`] invocations.
    pub batches: u64,
    /// Distinct automaton pairs interned.
    pub pairs_interned: u64,
    /// Queries that found their pair's sum construction (and everything
    /// hanging off it) already resident from an earlier run.
    pub sum_cache_hits: u64,
    /// Scope/reachability sets served from the per-pair memo.
    pub reach_cache_hits: u64,
    /// Warm guard sessions attached to queries (counted once per session
    /// per warm attach).
    pub sessions_reused: u64,
    /// Entailment verdicts replayed from warm-state memos without any
    /// solver contact.
    pub entailment_memo_hits: u64,
    /// Warm query-shape states (memo + session pools) evicted by the
    /// [`EngineConfig::warm_capacity`] LRU bound.
    pub warm_evictions: u64,
    /// Interned pairs evicted by the capacity bound (sum construction,
    /// scope sets and warm state dropped; a later query re-interns).
    pub pair_evictions: u64,
    /// Guard sessions pruned from retained warm session pools by the
    /// capacity bound.
    pub session_evictions: u64,
    /// Instantiation-ledger entries evicted by the capacity bound
    /// (mirrors the ledger's own counter).
    pub ledger_evictions: u64,
}

/// Per-pair interned artifacts plus the warm per-query-shape state.
struct PairState {
    left: Automaton,
    ql: StateId,
    right: Automaton,
    qr: StateId,
    sum: Sum,
    root: TemplatePair,
    /// The pair's structural fingerprint (index key) and the
    /// independently-salted confirmation fingerprint used to match
    /// persisted warm state across restarts.
    fingerprint: (u64, u64),
    /// Generation tag matching the [`PairId`]s handed out for this
    /// occupancy of the slot (slots are reused after eviction).
    generation: u64,
    /// Scope sets keyed by `(leaps, reach_pruning)`.
    scopes: HashMap<(bool, bool), Arc<Vec<TemplatePair>>>,
    /// Warm session pools + verdict memos keyed by query shape.
    warm: HashMap<WarmKey, WarmState>,
    /// Queries answered over this pair (0 = its artifacts were built but
    /// never yet used by a run).
    runs: u64,
    /// Recency tick for the LRU pair-eviction policy.
    last_used: u64,
}

/// A cheap structural fingerprint of a query pair, used to index the
/// intern table so lookup cost stays independent of how many pairs the
/// engine has served (deep equality is only checked within a bucket).
/// The second component is the same content hashed under a salt: persisted
/// warm state is keyed by the 128-bit combination, so a 64-bit collision
/// between distinct pairs cannot attach a saved memo to the wrong pair.
/// `DefaultHasher::new()` is keyed deterministically, so fingerprints are
/// stable across processes of the same build.
fn pair_fingerprint(left: &Automaton, ql: StateId, right: &Automaton, qr: StateId) -> (u64, u64) {
    use std::hash::{Hash, Hasher};
    let run = |salt: u64| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        salt.hash(&mut h);
        format!("{left:?}").hash(&mut h);
        ql.hash(&mut h);
        format!("{right:?}").hash(&mut h);
        qr.hash(&mut h);
        h.finish()
    };
    (run(0), run(0x5eed_1eaf))
}

/// The stable 128-bit routing fingerprint of a query pair: both salted
/// `pair_fingerprint` halves packed into one integer — the same key
/// that indexes persisted warm state. A fleet deployment routes a pair
/// to shard `route_fingerprint(..) % workers`, so a pair always lands
/// on the shard whose warm universe already knows it, and a saved state
/// dir can be re-partitioned deterministically when the worker count
/// changes (see [`Engine::import_memos_routed`]).
pub fn route_fingerprint(left: &Automaton, ql: StateId, right: &Automaton, qr: StateId) -> u128 {
    let (fp, fp2) = pair_fingerprint(left, ql, right, qr);
    ((fp as u128) << 64) | fp2 as u128
}

/// Everything that determines a query's result (given a pair): two
/// requests with equal keys are deterministic replays of each other, so
/// they may share warm state — including the exact verdict memo.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WarmKey {
    standard_init: bool,
    extra_init: Vec<ConfRel>,
    query: ConfRel,
    leaps: bool,
    reach_pruning: bool,
    early_stop: bool,
    max_iterations: Option<u64>,
}

impl WarmKey {
    fn of(req: &QueryRequest) -> WarmKey {
        WarmKey {
            standard_init: req.standard_init,
            extra_init: req.extra_init.clone(),
            query: req.query.clone(),
            leaps: req.options.leaps,
            reach_pruning: req.options.reach_pruning,
            early_stop: req.options.early_stop,
            max_iterations: req.options.max_iterations,
        }
    }
}

/// The warm state of one query shape: resident session pools and the
/// exact entailment-verdict memo.
///
/// The memo key is `(guard, same-guard premise count, conclusion)`. Within
/// one query shape the worklist run is deterministic, so the `k`-th
/// same-guard premise slice is identical across runs — the key uniquely
/// identifies the premise *set*, not just its size, and the recorded
/// verdict is exact. A fully warm re-check therefore replays every `Skip`
/// decision without a single solver call.
#[derive(Default)]
struct WarmState {
    main_pool: Option<SessionPool>,
    worker_pools: Vec<SessionPool>,
    memo: HashMap<MemoKey, bool>,
    runs: u64,
    /// Recency tick for the LRU warm-state eviction policy.
    last_used: u64,
}

/// One memoized entailment verdict: `(guard, same-guard premise count,
/// conclusion)` — see [`WarmState`] for why the key is exact.
type MemoKey = (TemplatePair, usize, Arc<ConfRel>);

/// Persisted entailment memos keyed by 128-bit pair fingerprint: each
/// pair carries its warm entries (query-shape key + memoized verdicts).
type SavedWarmMap = HashMap<(u64, u64), Vec<(WarmKey, HashMap<MemoKey, bool>)>>;

/// Encodes one persisted warm entry: the query-shape key plus every
/// memoized verdict, using the certificate JSON vocabulary for relations
/// and templates.
fn warm_entry_to_value(key: &WarmKey, memo: &HashMap<MemoKey, bool>) -> Value {
    let pair_value = |p: &TemplatePair| {
        json::obj(vec![
            ("left", json::template_to_value(&p.left)),
            ("right", json::template_to_value(&p.right)),
        ])
    };
    let mut entries: Vec<Value> = memo
        .iter()
        .map(|((guard, premises, rel), entailed)| {
            json::obj(vec![
                ("guard", pair_value(guard)),
                ("premises", json::num(*premises)),
                ("rel", json::confrel_to_value(rel)),
                ("entailed", Value::Bool(*entailed)),
            ])
        })
        .collect();
    entries.sort_by_key(Value::render);
    json::obj(vec![
        ("standard_init", Value::Bool(key.standard_init)),
        (
            "extra_init",
            Value::Arr(key.extra_init.iter().map(json::confrel_to_value).collect()),
        ),
        ("query", json::confrel_to_value(&key.query)),
        ("leaps", Value::Bool(key.leaps)),
        ("reach_pruning", Value::Bool(key.reach_pruning)),
        ("early_stop", Value::Bool(key.early_stop)),
        (
            "max_iterations",
            match key.max_iterations {
                Some(n) => json::num(n as usize),
                None => Value::Null,
            },
        ),
        ("memo", Value::Arr(entries)),
    ])
}

/// Decodes the persisted memo document written by `Engine::memos_to_json`.
fn memos_from_json(text: &str) -> Result<SavedWarmMap, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let err = |e: json::JsonError| e.to_string();
    let pair_from = |v: &Value| -> Result<TemplatePair, String> {
        Ok(TemplatePair::new(
            json::template_from_value(json::get(v, "left").map_err(err)?).map_err(err)?,
            json::template_from_value(json::get(v, "right").map_err(err)?).map_err(err)?,
        ))
    };
    let mut out: SavedWarmMap = HashMap::new();
    for pair in json::as_arr(json::get(&doc, "pairs").map_err(err)?).map_err(err)? {
        let fp: u64 = json::as_str(json::get(pair, "fingerprint").map_err(err)?)
            .map_err(err)?
            .parse()
            .map_err(|_| "bad fingerprint".to_string())?;
        let fp2: u64 = json::as_str(json::get(pair, "fingerprint2").map_err(err)?)
            .map_err(err)?
            .parse()
            .map_err(|_| "bad fingerprint2".to_string())?;
        let mut entries = Vec::new();
        for warm in json::as_arr(json::get(pair, "warm").map_err(err)?).map_err(err)? {
            let max_iterations = match json::get(warm, "max_iterations").map_err(err)? {
                Value::Null => None,
                v => Some(json::as_usize(v).map_err(err)? as u64),
            };
            let key = WarmKey {
                standard_init: json::as_bool(json::get(warm, "standard_init").map_err(err)?)
                    .map_err(err)?,
                extra_init: json::as_arr(json::get(warm, "extra_init").map_err(err)?)
                    .map_err(err)?
                    .iter()
                    .map(json::confrel_from_value)
                    .collect::<Result<_, _>>()
                    .map_err(err)?,
                query: json::confrel_from_value(json::get(warm, "query").map_err(err)?)
                    .map_err(err)?,
                leaps: json::as_bool(json::get(warm, "leaps").map_err(err)?).map_err(err)?,
                reach_pruning: json::as_bool(json::get(warm, "reach_pruning").map_err(err)?)
                    .map_err(err)?,
                early_stop: json::as_bool(json::get(warm, "early_stop").map_err(err)?)
                    .map_err(err)?,
                max_iterations,
            };
            let mut memo = HashMap::new();
            for entry in json::as_arr(json::get(warm, "memo").map_err(err)?).map_err(err)? {
                let guard = pair_from(json::get(entry, "guard").map_err(err)?)?;
                let premises =
                    json::as_usize(json::get(entry, "premises").map_err(err)?).map_err(err)?;
                let rel =
                    json::confrel_from_value(json::get(entry, "rel").map_err(err)?).map_err(err)?;
                let entailed =
                    json::as_bool(json::get(entry, "entailed").map_err(err)?).map_err(err)?;
                memo.insert((guard, premises, Arc::new(rel)), entailed);
            }
            entries.push((key, memo));
        }
        out.entry((fp, fp2)).or_default().extend(entries);
    }
    Ok(out)
}

impl WarmState {
    /// Warm guard sessions currently resident across all pools.
    fn session_count(&self) -> usize {
        self.main_pool.as_ref().map(SessionPool::len).unwrap_or(0)
            + self
                .worker_pools
                .iter()
                .map(SessionPool::len)
                .sum::<usize>()
    }

    /// Ensures the main pool exists and at least `threads` worker slots do.
    fn ensure_pools(&mut self, threads: usize, cfg: &SessionConfig) {
        if self.main_pool.is_none() {
            self.main_pool = Some(SessionPool::with_config(cfg.clone()));
        }
        let workers = if threads > 1 { threads } else { 0 };
        while self.worker_pools.len() < workers {
            self.worker_pools
                .push(SessionPool::with_config(cfg.clone()));
        }
    }
}

/// The persistent engine. See the module docs for what it keeps warm.
pub struct Engine {
    config: EngineConfig,
    cache: SharedBlastCache,
    ledger: InstLedger,
    /// Interned pairs; evicted slots are tombstoned (so outstanding
    /// [`PairId`]s of *other* pairs stay valid) and recycled through
    /// `free_slots` (so the vector does not grow with every distinct
    /// pair a long-lived daemon ever sees).
    pairs: Vec<Option<PairState>>,
    /// Slots freed by pair eviction, reused by the next intern.
    free_slots: Vec<usize>,
    /// Intern index: pair fingerprint → candidate indices into `pairs`.
    pair_index: HashMap<u64, Vec<usize>>,
    /// Persisted entailment memos not yet claimed by an interned pair,
    /// keyed by the 128-bit pair fingerprint.
    saved_warm: SavedWarmMap,
    /// Monotone recency counter for the LRU eviction policies.
    tick: u64,
    stats: EngineStats,
    last_run: RunStats,
    sink: Option<Box<dyn WitnessSink>>,
    state_report: Option<String>,
    /// Label attached to the next query's slow-log record (a suite row
    /// name); falls back to the pair fingerprint when unset.
    query_label: Option<String>,
}

/// Global metric handles for the engine layer. The lower layers count
/// solver work (`leapfrog_cegar_rounds_total`, …); these count the
/// engine's own reuse machinery, live as it happens, so the daemon's
/// `metrics` request reports totals mid-run.
mod meters {
    use leapfrog_obs::{LazyCounter, LazyHistogram};

    pub static CHECKS: LazyCounter = LazyCounter::new("leapfrog_checks_total");
    pub static BATCHES: LazyCounter = LazyCounter::new("leapfrog_batches_total");
    pub static ENTAILMENT_CHECKS: LazyCounter =
        LazyCounter::new("leapfrog_entailment_checks_total");
    pub static ENTAILMENT_MEMO_HITS: LazyCounter =
        LazyCounter::new("leapfrog_entailment_memo_hits_total");
    pub static PAIRS_INTERNED: LazyCounter = LazyCounter::new("leapfrog_pairs_interned_total");
    pub static WARM_EVICTIONS: LazyCounter = LazyCounter::new("leapfrog_warm_evictions_total");
    pub static PAIR_EVICTIONS: LazyCounter = LazyCounter::new("leapfrog_pair_evictions_total");
    pub static SLOW_QUERIES: LazyCounter = LazyCounter::new("leapfrog_slow_queries_total");
    pub static SAT_DECISIONS: LazyCounter = LazyCounter::new("leapfrog_sat_decisions_total");
    pub static SAT_PROPAGATIONS: LazyCounter = LazyCounter::new("leapfrog_sat_propagations_total");
    pub static SAT_CONFLICTS: LazyCounter = LazyCounter::new("leapfrog_sat_conflicts_total");
    pub static SAT_RESTARTS: LazyCounter = LazyCounter::new("leapfrog_sat_restarts_total");
    pub static SAT_LEARNT_DELETED: LazyCounter =
        LazyCounter::new("leapfrog_sat_learnt_deleted_total");
    /// Learn-time LBD histogram as one counter per bucket (bucket `i`
    /// counts learnt clauses with LBD `i + 1`; the last bucket is ≥ 8).
    pub static SAT_LBD_BUCKETS: [LazyCounter; super::LBD_BUCKETS] = [
        LazyCounter::new("leapfrog_sat_lbd_1_total"),
        LazyCounter::new("leapfrog_sat_lbd_2_total"),
        LazyCounter::new("leapfrog_sat_lbd_3_total"),
        LazyCounter::new("leapfrog_sat_lbd_4_total"),
        LazyCounter::new("leapfrog_sat_lbd_5_total"),
        LazyCounter::new("leapfrog_sat_lbd_6_total"),
        LazyCounter::new("leapfrog_sat_lbd_7_total"),
        LazyCounter::new("leapfrog_sat_lbd_8_plus_total"),
    ];
    pub static QUERY_SECONDS: LazyHistogram = LazyHistogram::new("leapfrog_query_seconds");
    pub static SAT_PORTFOLIO_RACES: LazyCounter =
        LazyCounter::new("leapfrog_sat_portfolio_races_total");
    pub static SAT_PORTFOLIO_SOLO: LazyCounter =
        LazyCounter::new("leapfrog_sat_portfolio_solo_total");
    /// Portfolio race wins as one counter per lane (the registry has no
    /// label support, so the lane index is baked into the metric name,
    /// mirroring the LBD bucket counters above).
    pub static SAT_PORTFOLIO_WINS: [LazyCounter; super::MAX_PORTFOLIO_LANES] = [
        LazyCounter::new("leapfrog_sat_portfolio_wins_0_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_1_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_2_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_3_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_4_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_5_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_6_total"),
        LazyCounter::new("leapfrog_sat_portfolio_wins_7_total"),
    ];
}

/// Per-query trace context: opened before any per-query work (so the
/// `intern_pair`/`sum` spans of a cold pair land inside the query
/// window), closed by [`QueryTrace::finish`], which diffs the phase
/// aggregates into `RunStats::phases` and captures the slow-query span
/// tree when the query ran over the armed threshold. All of this is
/// observational: nothing here is read back by the pipeline.
struct QueryTrace {
    phase_base: leapfrog_obs::PhaseSnapshot,
    event_mark: u64,
    start: Instant,
    label: Option<String>,
    root_span: Option<leapfrog_obs::SpanGuard>,
}

impl QueryTrace {
    fn begin(label: Option<String>) -> QueryTrace {
        let tr = trace::collector();
        QueryTrace {
            phase_base: tr.phase_snapshot(),
            event_mark: tr.event_mark(),
            start: Instant::now(),
            label,
            root_span: tr.span(Phase::Query),
        }
    }

    fn finish(mut self, stats: &mut RunStats, fallback_label: impl FnOnce() -> String) {
        // Close the root span first so its time is in the aggregates.
        drop(self.root_span.take());
        let tr = trace::collector();
        if tr.enabled() {
            stats.phases = tr.phase_snapshot().delta(&self.phase_base);
        }
        let elapsed = self.start.elapsed();
        meters::QUERY_SECONDS.record(elapsed);
        if let Some(threshold_ms) = tr.slow_threshold_ms() {
            let wall_ms = elapsed.as_millis() as u64;
            if wall_ms >= threshold_ms {
                meters::SLOW_QUERIES.inc();
                let events = tr.events_since(self.event_mark);
                tr.push_slow(leapfrog_obs::SlowQuery {
                    label: self.label.take().unwrap_or_else(fallback_label),
                    wall_ms,
                    threshold_ms,
                    tree_json: leapfrog_obs::render_span_tree(&events),
                });
            }
        }
    }
}

impl Engine {
    /// Builds an engine owning the given configuration, reloading any
    /// persisted warm state from [`EngineConfig::state_dir`]. (Also
    /// reachable as [`EngineConfig::build`].)
    pub fn new(config: EngineConfig) -> Engine {
        let cache = SharedBlastCache::with_enabled(config.blast_cache);
        let ledger = InstLedger::with_capacity(config.warm_capacity);
        let mut engine = Engine {
            config,
            cache,
            ledger,
            pairs: Vec::new(),
            free_slots: Vec::new(),
            pair_index: HashMap::new(),
            saved_warm: HashMap::new(),
            tick: 0,
            stats: EngineStats::default(),
            last_run: RunStats::default(),
            sink: None,
            state_report: None,
            query_label: None,
        };
        // `LEAPFROG_TRACE` / `LEAPFROG_SLOW_QUERY_MS` take effect at
        // engine construction (the collector is process-global).
        trace::collector().apply_env();
        engine.load_state();
        engine
    }

    /// The process-global metrics registry every layer writes into.
    /// One process hosts one engine (the daemon model), so registry
    /// "ownership" is access: the engine is where callers fetch it.
    pub fn metrics(&self) -> &'static leapfrog_obs::MetricsRegistry {
        leapfrog_obs::global()
    }

    /// The process-global span-trace collector (ring, phase
    /// aggregates, slow-query log).
    pub fn tracer(&self) -> &'static leapfrog_obs::TraceCollector {
        trace::collector()
    }

    /// Labels the *next* query for the slow-query log (a suite row
    /// name, say); consumed by that query, after which labels fall
    /// back to the pair fingerprint.
    pub fn set_query_label(&mut self, label: impl Into<String>) {
        self.query_label = Some(label.into());
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// A clonable handle to the engine's shared blast cache.
    pub fn shared_cache(&self) -> SharedBlastCache {
        self.cache.clone()
    }

    /// Cumulative reuse statistics over the engine's lifetime.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Statistics of the most recent query (for a batch: the whole batch,
    /// merged in submission order).
    pub fn last_run_stats(&self) -> &RunStats {
        &self.last_run
    }

    /// Attaches a recipient for confirmed refutation witnesses found by
    /// named checks (e.g. the evaluation suite's witness corpus).
    pub fn attach_witness_sink(&mut self, sink: Box<dyn WitnessSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the witness sink, if one was attached.
    pub fn take_witness_sink(&mut self) -> Option<Box<dyn WitnessSink>> {
        self.sink.take()
    }

    /// Verdicts currently recorded in the instantiation ledger.
    pub fn ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// What [`EngineConfig::state_dir`] loading found at construction
    /// (`None` for a cold start with nothing to report).
    pub fn state_report(&self) -> Option<&str> {
        self.state_report.as_deref()
    }

    /// Serializes the engine's reloadable warm state into `dir` (created
    /// if missing): the blast-cache CNF templates, the instantiation
    /// ledger's validation verdicts, every entailment-verdict memo (keyed
    /// by pair fingerprint so a restarted engine re-attaches them on
    /// intern), and — when the attached [`WitnessSink`] has a serialized
    /// form — the witness corpus. An engine built with
    /// [`EngineConfig::with_state_dir`] pointing here starts warm: memo
    /// and ledger replays need no solver contact, and cached CNF templates
    /// skip the blasting work.
    pub fn save_state(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(STATE_BLAST_FILE), self.cache.export_text())?;
        std::fs::write(dir.join(STATE_LEDGER_FILE), self.ledger.export_text())?;
        std::fs::write(dir.join(STATE_MEMO_FILE), self.memos_to_json())?;
        if let Some(text) = self.sink.as_ref().and_then(|s| s.export_text()) {
            std::fs::write(dir.join(STATE_CORPUS_FILE), text)?;
        }
        Ok(())
    }

    /// Encodes every entailment memo — live pairs' warm states plus any
    /// still-unclaimed persisted entries — as one JSON document, in
    /// deterministic order.
    fn memos_to_json(&self) -> String {
        let mut by_pair: Vec<((u64, u64), Vec<Value>)> = Vec::new();
        let mut push =
            |fp: (u64, u64), entry: Value| match by_pair.iter_mut().find(|(f, _)| *f == fp) {
                Some((_, entries)) => entries.push(entry),
                None => by_pair.push((fp, vec![entry])),
            };
        for p in self.pairs.iter().flatten() {
            for (key, warm) in &p.warm {
                if !warm.memo.is_empty() {
                    push(p.fingerprint, warm_entry_to_value(key, &warm.memo));
                }
            }
        }
        for (fp, entries) in &self.saved_warm {
            for (key, memo) in entries {
                if !memo.is_empty() {
                    push(*fp, warm_entry_to_value(key, memo));
                }
            }
        }
        by_pair.sort_by_key(|(fp, _)| *fp);
        for (_, entries) in &mut by_pair {
            entries.sort_by_key(Value::render);
        }
        let pairs = by_pair
            .into_iter()
            .map(|((fp, fp2), entries)| {
                json::obj(vec![
                    ("fingerprint", Value::Str(fp.to_string())),
                    ("fingerprint2", Value::Str(fp2.to_string())),
                    ("warm", Value::Arr(entries)),
                ])
            })
            .collect();
        json::obj(vec![
            ("version", Value::Num(1.0)),
            ("pairs", Value::Arr(pairs)),
        ])
        .render()
    }

    /// Best-effort reload of persisted state from the configured state
    /// directory. Missing files are a cold start; unreadable ones are
    /// noted in [`Engine::state_report`] and skipped — a corrupt state dir
    /// must never take the service down, only slow it.
    fn load_state(&mut self) {
        let Some(dir) = self.config.state_dir.clone() else {
            return;
        };
        let mut notes: Vec<String> = Vec::new();
        let read = |file: &str| -> Option<String> { std::fs::read_to_string(dir.join(file)).ok() };
        if let Some(text) = read(STATE_BLAST_FILE) {
            match self.cache.import_text(&text) {
                Ok(n) => notes.push(format!("{n} CNF templates")),
                Err(e) => notes.push(format!("blast cache skipped ({e})")),
            }
        }
        if let Some(text) = read(STATE_LEDGER_FILE) {
            match self.ledger.import_text(&text) {
                Ok(n) => notes.push(format!("{n} ledger verdicts")),
                Err(e) => notes.push(format!("ledger skipped ({e})")),
            }
        }
        if let Some(text) = read(STATE_MEMO_FILE) {
            match memos_from_json(&text) {
                Ok(saved) => {
                    let n: usize = saved
                        .values()
                        .flat_map(|entries| entries.iter().map(|(_, m)| m.len()))
                        .sum();
                    notes.push(format!("{n} memoized verdicts"));
                    self.saved_warm = saved;
                }
                Err(e) => notes.push(format!("memos skipped ({e})")),
            }
        }
        if !notes.is_empty() {
            self.state_report = Some(format!(
                "reloaded from {}: {}",
                dir.display(),
                notes.join(", ")
            ));
        }
    }

    /// Imports persisted entailment memos from another engine's state
    /// directory, keeping only the pairs whose 128-bit routing
    /// fingerprint satisfies `keep`. This is the shard-merge path: when
    /// a fleet restarts at a different worker count, every new shard
    /// feeds each saved `shard-<i>/` directory through this with
    /// `keep = |fp| fp % workers == shard`, so memo entries re-route to
    /// the shard that will intern their pair. Content-keyed artifacts
    /// (blast cache, ledger) are not fingerprint-routed and degrade to
    /// cold. Returns the number of memoized verdicts adopted.
    pub fn import_memos_routed(
        &mut self,
        dir: impl AsRef<Path>,
        keep: &dyn Fn(u128) -> bool,
    ) -> Result<usize, String> {
        let path = dir.as_ref().join(STATE_MEMO_FILE);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let saved = memos_from_json(&text)?;
        let mut adopted = 0usize;
        for ((fp, fp2), entries) in saved {
            if !keep(((fp as u128) << 64) | fp2 as u128) {
                continue;
            }
            adopted += entries.iter().map(|(_, memo)| memo.len()).sum::<usize>();
            self.saved_warm
                .entry((fp, fp2))
                .or_default()
                .extend(entries);
        }
        if adopted > 0 {
            let note = format!(
                "merged {adopted} routed verdicts from {}",
                dir.as_ref().display()
            );
            self.state_report = Some(match self.state_report.take() {
                Some(prev) => format!("{prev}; {note}"),
                None => note,
            });
        }
        Ok(adopted)
    }

    /// Interns an automaton pair: on first sight the disjoint sum and root
    /// template pair are constructed; afterwards the same handle (and all
    /// memoized artifacts behind it) is returned without rebuilding.
    pub fn prepare_pair(
        &mut self,
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
    ) -> PairId {
        let (pid, _) = self.intern_pair(left, ql, right, qr);
        pid
    }

    fn intern_pair(
        &mut self,
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
    ) -> (PairId, bool) {
        let fp = pair_fingerprint(left, ql, right, qr);
        self.tick += 1;
        if let Some(bucket) = self.pair_index.get(&fp.0) {
            for &i in bucket {
                let Some(p) = &self.pairs[i] else { continue };
                if p.ql == ql && p.qr == qr && p.left == *left && p.right == *right {
                    let p = self.pairs[i].as_mut().unwrap();
                    p.last_used = self.tick;
                    return (PairId(i, p.generation), true);
                }
            }
        }
        let _intern_span = trace::span(Phase::InternPair);
        let sum_span = trace::span(Phase::Sum);
        let sum_info = sum(left, right);
        drop(sum_span);
        let root = TemplatePair::new(
            Template::start(sum_info.left_state(ql)),
            Template::start(sum_info.right_state(qr)),
        );
        // Persisted entailment memos for this pair (saved by an earlier
        // process) attach here: the sessions start cold, but every
        // recorded verdict replays without solver contact.
        let warm: HashMap<WarmKey, WarmState> = self
            .saved_warm
            .remove(&fp)
            .map(|entries| {
                entries
                    .into_iter()
                    .map(|(key, memo)| {
                        (
                            key,
                            WarmState {
                                memo,
                                ..WarmState::default()
                            },
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        let generation = self.tick;
        let state = PairState {
            left: left.clone(),
            ql,
            right: right.clone(),
            qr,
            sum: sum_info,
            root,
            fingerprint: fp,
            generation,
            scopes: HashMap::new(),
            warm,
            runs: 0,
            last_used: self.tick,
        };
        let i = match self.free_slots.pop() {
            Some(slot) => {
                self.pairs[slot] = Some(state);
                slot
            }
            None => {
                self.pairs.push(Some(state));
                self.pairs.len() - 1
            }
        };
        self.pair_index.entry(fp.0).or_default().push(i);
        self.stats.pairs_interned += 1;
        meters::PAIRS_INTERNED.inc();
        (PairId(i, generation), false)
    }

    fn pair(&self, pid: PairId) -> &PairState {
        self.pairs[pid.0]
            .as_ref()
            .filter(|p| p.generation == pid.1)
            .expect("stale PairId: the pair was evicted by the warm-capacity bound")
    }

    fn pair_mut(&mut self, pid: PairId) -> &mut PairState {
        self.pairs[pid.0]
            .as_mut()
            .filter(|p| p.generation == pid.1)
            .expect("stale PairId: the pair was evicted by the warm-capacity bound")
    }

    /// The disjoint-sum automaton of a prepared pair.
    pub fn sum_automaton(&self, pid: PairId) -> &Automaton {
        &self.pair(pid).sum.automaton
    }

    /// The sum's identifier mappings for a prepared pair.
    pub fn sum_info(&self, pid: PairId) -> &Sum {
        &self.pair(pid).sum
    }

    /// The root template pair of a prepared pair.
    pub fn root(&self, pid: PairId) -> TemplatePair {
        self.pair(pid).root
    }

    /// The reachable template pairs of a prepared pair under the engine's
    /// leap setting, memoized for the engine's lifetime.
    pub fn reachable(&mut self, pid: PairId) -> Arc<Vec<TemplatePair>> {
        self.scope_for(pid, self.config.leaps, true).0
    }

    /// The standard language-equivalence request for a prepared pair under
    /// the engine's configuration.
    pub fn standard_request(&self, pid: PairId) -> QueryRequest {
        QueryRequest {
            standard_init: true,
            extra_init: Vec::new(),
            query: ConfRel::trivial(self.root(pid)),
            options: self.config.options(),
        }
    }

    /// Checks `L(left, ql) = L(right, qr)` for all initial stores, reusing
    /// every warm artifact the engine holds for this pair.
    pub fn check(
        &mut self,
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
    ) -> Outcome {
        // Open the trace window before interning so a cold pair's
        // `intern_pair`/`sum` spans land inside this query's tree.
        let qt = QueryTrace::begin(self.query_label.take());
        let (pid, _) = self.intern_pair(left, ql, right, qr);
        let req = self.standard_request(pid);
        self.run_prepared_traced(pid, &req, qt)
    }

    /// [`Engine::check`] with a name: a confirmed refutation witness is
    /// additionally recorded into the attached [`WitnessSink`].
    pub fn check_named(
        &mut self,
        name: &str,
        left: &Automaton,
        ql: StateId,
        right: &Automaton,
        qr: StateId,
    ) -> Outcome {
        self.set_query_label(name);
        let outcome = self.check(left, ql, right, qr);
        if let (Some(sink), Some(w)) = (self.sink.as_mut(), outcome.witness()) {
            sink.record(name, w);
        }
        outcome
    }

    /// Runs an elaborated request over a prepared pair. Per-run statistics
    /// land in [`Engine::last_run_stats`].
    pub fn run_prepared(&mut self, pid: PairId, req: &QueryRequest) -> Outcome {
        let qt = QueryTrace::begin(self.query_label.take());
        self.run_prepared_traced(pid, req, qt)
    }

    fn run_prepared_traced(&mut self, pid: PairId, req: &QueryRequest, qt: QueryTrace) -> Outcome {
        let opts = req.options;
        let (scope, reach_hit) = self.scope_for(pid, opts.leaps, opts.reach_pruning);
        let key = WarmKey::of(req);
        self.tick += 1;
        let tick = self.tick;
        let mut solver = SmtSolver::with_shared_cache(self.cache.clone());
        let pair = self.pair_mut(pid);
        pair.last_used = tick;
        let mut warm = pair.warm.remove(&key).unwrap_or_default();
        let aut = pair.sum.automaton.clone();
        let mut stats = RunStats {
            reach_cache_hits: reach_hit as u64,
            // The pair's sum/root artifacts were already resident iff a
            // prior run used them — counted here so every entry point
            // (check, Checker::run, the relational row runners) reports
            // sum reuse consistently.
            sum_cache_hits: (pair.runs > 0) as u64,
            ..RunStats::default()
        };
        pair.runs += 1;
        let outcome = run_worklist(
            &aut,
            &scope,
            req,
            &mut warm,
            &self.cache,
            &self.ledger,
            &mut solver,
            &mut stats,
        );
        warm.last_used = tick;
        self.pair_mut(pid).warm.insert(key, warm);
        let fp = self.pair(pid).fingerprint;
        qt.finish(&mut stats, || format!("pair:{:016x}", fp.0));
        self.absorb_run(&stats);
        self.last_run = stats;
        self.enforce_caps();
        outcome
    }

    fn absorb_run(&mut self, stats: &RunStats) {
        self.stats.checks += 1;
        meters::CHECKS.inc();
        self.stats.sessions_reused += stats.sessions_reused;
        self.stats.entailment_memo_hits += stats.entailment_memo_hits;
        self.stats.reach_cache_hits += stats.reach_cache_hits;
        self.stats.sum_cache_hits += stats.sum_cache_hits;
        let sat = &stats.queries.sat;
        meters::SAT_DECISIONS.add(sat.decisions);
        meters::SAT_PROPAGATIONS.add(sat.propagations);
        meters::SAT_CONFLICTS.add(sat.conflicts);
        meters::SAT_RESTARTS.add(sat.restarts);
        meters::SAT_LEARNT_DELETED.add(sat.deleted_clauses);
        for (bucket, n) in meters::SAT_LBD_BUCKETS.iter().zip(sat.lbd_histogram) {
            bucket.add(n);
        }
        let portfolio = &stats.queries.portfolio;
        meters::SAT_PORTFOLIO_RACES.add(portfolio.races);
        meters::SAT_PORTFOLIO_SOLO.add(portfolio.solo);
        for (lane, n) in meters::SAT_PORTFOLIO_WINS.iter().zip(portfolio.wins) {
            lane.add(n);
        }
    }

    /// Applies the [`EngineConfig::warm_capacity`] LRU bound between runs:
    /// warm query-shape states, resident guard sessions per pool and
    /// interned pairs are each trimmed to the capacity, least-recently-used
    /// first, and the ledger's own eviction counter is mirrored into the
    /// engine statistics. Eviction only ever discards caches of
    /// deterministic computations, so results are unaffected.
    fn enforce_caps(&mut self) {
        self.stats.ledger_evictions = self.ledger.evictions();
        let cap = self.config.warm_capacity;
        if cap == 0 {
            return;
        }
        // Warm query-shape states, engine-wide.
        loop {
            let total: usize = self.pairs.iter().flatten().map(|p| p.warm.len()).sum();
            if total <= cap {
                break;
            }
            let mut victim: Option<(usize, WarmKey, u64)> = None;
            for (i, p) in self.pairs.iter().enumerate() {
                let Some(p) = p else { continue };
                for (k, w) in &p.warm {
                    if victim.as_ref().is_none_or(|(_, _, t)| w.last_used < *t) {
                        victim = Some((i, k.clone(), w.last_used));
                    }
                }
            }
            let (i, key, _) = victim.expect("count above cap implies a victim");
            self.pairs[i].as_mut().unwrap().warm.remove(&key);
            self.stats.warm_evictions += 1;
            meters::WARM_EVICTIONS.inc();
        }
        // Guard sessions inside the retained warm states.
        let mut pruned = 0usize;
        for p in self.pairs.iter_mut().flatten() {
            for w in p.warm.values_mut() {
                if let Some(pool) = w.main_pool.as_mut() {
                    pruned += pool.prune_lru(cap);
                }
                for pool in &mut w.worker_pools {
                    pruned += pool.prune_lru(cap);
                }
            }
        }
        self.stats.session_evictions += pruned as u64;
        // Interned pairs.
        loop {
            let live = self.pairs.iter().flatten().count();
            if live <= cap {
                break;
            }
            let victim = self
                .pairs
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.as_ref().map(|p| (i, p.last_used)))
                .min_by_key(|&(_, t)| t)
                .expect("count above cap implies a victim")
                .0;
            let evicted = self.pairs[victim].take().expect("victim is live");
            if let Some(bucket) = self.pair_index.get_mut(&evicted.fingerprint.0) {
                bucket.retain(|&i| i != victim);
                if bucket.is_empty() {
                    self.pair_index.remove(&evicted.fingerprint.0);
                }
            }
            self.free_slots.push(victim);
            self.stats.pair_evictions += 1;
            meters::PAIR_EVICTIONS.inc();
        }
    }

    /// Answers many language-equivalence queries, scheduling them over the
    /// work-stealing worker pool: queries on *distinct* pairs run
    /// concurrently (one worker drains a shared cursor over the pair
    /// groups), while queries on the *same* pair run back-to-back in one
    /// group so the later ones hit that pair's warm state. With one
    /// thread the batch runs sequentially and still reuses everything.
    /// Outcomes are returned in submission order and are bit-identical to
    /// checking each spec individually.
    ///
    /// # Example
    ///
    /// ```
    /// use leapfrog::{EngineConfig, QuerySpec};
    /// use leapfrog_p4a::surface::parse;
    ///
    /// let a = parse("parser A { state s { extract(h, 2); goto accept } }").unwrap();
    /// let q = a.state_by_name("s").unwrap();
    /// let mut engine = EngineConfig::new().threads(1).build();
    /// let spec = QuerySpec::new("self", &a, q, &a, q);
    /// // The second query hits the warm state the first one built.
    /// let outcomes = engine.check_batch(&[spec.clone(), spec]);
    /// assert!(outcomes.iter().all(|o| o.is_equivalent()));
    /// ```
    pub fn check_batch(&mut self, specs: &[QuerySpec]) -> Vec<Outcome> {
        self.stats.batches += 1;
        meters::BATCHES.inc();
        let threads = self.config.effective_threads();
        let mut outcomes: Vec<Option<Outcome>> = (0..specs.len()).map(|_| None).collect();
        let mut merged = RunStats::default();
        if threads <= 1 {
            // Sequential batch: inner per-query parallelism is moot at one
            // thread, and warm reuse across duplicate specs still applies.
            for (i, s) in specs.iter().enumerate() {
                outcomes[i] = Some(self.check(&s.left, s.ql, &s.right, s.qr));
                merged.merge(&self.last_run);
            }
        } else {
            // Parallel batch members bypass `run_prepared`, so the
            // phase breakdown (and slow-query capture, which is
            // per-query only) is accounted batch-wide here: one delta
            // over the whole parallel section. Worker spans carry no
            // cross-thread parent, so they aggregate but don't nest.
            let phase_base = trace::collector().phase_snapshot();
            // Group submission indices by interned pair, preserving
            // first-seen order (the deterministic order stats merge in).
            let mut groups: Vec<(PairId, Vec<usize>)> = Vec::new();
            for (i, s) in specs.iter().enumerate() {
                let (pid, _) = self.intern_pair(&s.left, s.ql, &s.right, s.qr);
                match groups.iter_mut().find(|(p, _)| *p == pid) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((pid, vec![i])),
                }
            }
            // Parallel batch: one task per pair group, inner threads = 1 —
            // the worker pool parallelizes across queries instead of
            // inside each one. Queries of the same group run back-to-back
            // on one worker so they hit the group's warm state.
            struct GroupTask {
                pid: PairId,
                aut: Automaton,
                scope: Arc<Vec<TemplatePair>>,
                req: QueryRequest,
                warm: WarmState,
                /// This pair's run count before the batch — the group's
                /// first query reports sum reuse iff it is nonzero; later
                /// group members always reuse.
                prior_runs: u64,
                indices: Vec<usize>,
                results: Vec<(usize, Outcome, RunStats)>,
            }
            let mut inner_opts = self.config.options();
            inner_opts.threads = 1;
            let mut tasks: Vec<GroupTask> = groups
                .into_iter()
                .map(|(pid, indices)| {
                    let (scope, reach_hit) =
                        self.scope_for(pid, inner_opts.leaps, inner_opts.reach_pruning);
                    merged.reach_cache_hits += reach_hit as u64;
                    let mut req = self.standard_request(pid);
                    req.options = inner_opts;
                    let key = WarmKey::of(&req);
                    let pair = self.pair_mut(pid);
                    let prior_runs = pair.runs;
                    pair.runs += indices.len() as u64;
                    GroupTask {
                        pid,
                        aut: pair.sum.automaton.clone(),
                        warm: pair.warm.remove(&key).unwrap_or_default(),
                        scope,
                        req,
                        prior_runs,
                        indices,
                        results: Vec::new(),
                    }
                })
                .collect();
            let cache = &self.cache;
            let ledger = &self.ledger;
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let task_cells: Vec<std::sync::Mutex<Option<&mut GroupTask>>> = tasks
                .iter_mut()
                .map(|t| std::sync::Mutex::new(Some(t)))
                .collect();
            std::thread::scope(|s| {
                for _ in 0..threads.min(task_cells.len()) {
                    let cursor = &cursor;
                    let task_cells = &task_cells;
                    s.spawn(move || loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= task_cells.len() {
                            break;
                        }
                        let Some(task) = task_cells[i].lock().unwrap().take() else {
                            continue;
                        };
                        for &qi in &task.indices {
                            let mut solver = SmtSolver::with_shared_cache(cache.clone());
                            let mut stats = RunStats::default();
                            let outcome = run_worklist(
                                &task.aut,
                                &task.scope,
                                &task.req,
                                &mut task.warm,
                                cache,
                                ledger,
                                &mut solver,
                                &mut stats,
                            );
                            task.results.push((qi, outcome, stats));
                        }
                    });
                }
            });
            for mut task in tasks {
                let key = WarmKey::of(&task.req);
                self.tick += 1;
                task.warm.last_used = self.tick;
                self.pair_mut(task.pid).warm.insert(key, task.warm);
                for (j, (qi, outcome, mut stats)) in task.results.drain(..).enumerate() {
                    stats.sum_cache_hits = if j == 0 {
                        (task.prior_runs > 0) as u64
                    } else {
                        1
                    };
                    self.absorb_run(&stats);
                    merged.merge(&stats);
                    outcomes[qi] = Some(outcome);
                }
            }
            if trace::collector().enabled() {
                merged.phases = trace::collector().phase_snapshot().delta(&phase_base);
            }
        }
        self.last_run = merged;
        self.enforce_caps();
        let outcomes: Vec<Outcome> = outcomes.into_iter().map(Option::unwrap).collect();
        if let Some(sink) = self.sink.as_mut() {
            for (spec, outcome) in specs.iter().zip(&outcomes) {
                if let Some(w) = outcome.witness() {
                    sink.record(&spec.name, w);
                }
            }
        }
        outcomes
    }

    /// The template pairs a query over `pid` considers, memoized per
    /// `(leaps, reach_pruning)`. The second component reports whether the
    /// set was served from the memo.
    fn scope_for(
        &mut self,
        pid: PairId,
        leaps: bool,
        reach_pruning: bool,
    ) -> (Arc<Vec<TemplatePair>>, bool) {
        let pair = self.pair_mut(pid);
        if let Some(s) = pair.scopes.get(&(leaps, reach_pruning)) {
            return (s.clone(), true);
        }
        let _reach_span = trace::span(Phase::Reach);
        let scope: Vec<TemplatePair> = if reach_pruning {
            reachable_pairs(&pair.sum.automaton, &[pair.root], leaps)
        } else {
            // The full product of left-side and right-side templates
            // (left-parser states never appear on the right, so restrict
            // each side to its own parser's states plus accept/reject).
            let side_templates = |left: bool| -> Vec<Template> {
                all_templates(&pair.sum.automaton)
                    .into_iter()
                    .filter(|t| match t.target {
                        Target::State(q) => pair.sum.is_left_state(q) == left,
                        _ => true,
                    })
                    .collect()
            };
            let ls = side_templates(true);
            let rs = side_templates(false);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for l in &ls {
                for r in &rs {
                    out.push(TemplatePair::new(*l, *r));
                }
            }
            out
        };
        let scope = Arc::new(scope);
        pair.scopes.insert((leaps, reach_pruning), scope.clone());
        (scope, false)
    }
}

/// Merges worker/session statistics from the main pool and all worker
/// slots, in deterministic slot order.
fn pool_stats(main: &SessionPool, workers: &[SessionPool]) -> QueryStats {
    let mut out = main.stats();
    for w in workers {
        out.absorb(&w.stats());
    }
    out
}

/// Algorithm 1 over engine-owned resources: the guard-indexed worklist
/// with the work-stealing parallel frontier (see `core::checker`'s module
/// docs for the algorithm), plus the warm-state fast paths:
///
/// * every merged entailment verdict is recorded in the warm state's memo
///   and replayed on later runs of the same query shape;
/// * session pools persist across runs, so premise clauses, learnt CDCL
///   state and CEGAR instantiations carry over whenever a check misses
///   the memo.
#[allow(clippy::too_many_arguments)]
fn run_worklist(
    aut: &Automaton,
    scope: &[TemplatePair],
    req: &QueryRequest,
    warm: &mut WarmState,
    cache: &SharedBlastCache,
    ledger: &InstLedger,
    solver: &mut SmtSolver,
    stats: &mut RunStats,
) -> Outcome {
    let start = Instant::now();
    let opts = &req.options;
    let threads = opts.effective_threads();
    stats.scope_pairs = scope.len();
    stats.threads = threads;
    stats.sessions_reused = warm.session_count() as u64;
    warm.runs += 1;

    let session_cfg = SessionConfig {
        gc_ratio: opts.session_gc_ratio,
        gc_floor: opts.session_gc_floor,
        ledger: Some(ledger.clone()),
        sat: {
            let base = SolverConfig {
                lbd: opts.sat_lbd,
                ..SolverConfig::default()
            };
            let mut sat = if opts.sat_portfolio >= 2 {
                PortfolioConfig::race(base, opts.sat_portfolio)
            } else {
                PortfolioConfig::single(base)
            };
            sat.min_clauses = opts.sat_portfolio_min_clauses;
            sat
        },
    };
    warm.ensure_pools(threads, &session_cfg);
    let mut main_pool = warm.main_pool.take().expect("ensured above");
    let mut worker_pools = std::mem::take(&mut warm.worker_pools);
    let session_base = pool_stats(&main_pool, &worker_pools);

    // Initial relation I (Lemma 4.10 / Theorem 5.2): forbid pairs that
    // disagree on acceptance, restricted to the scope; plus any
    // user-supplied conditions.
    //
    // Every relation that enters the frontier gets a provenance record
    // — which relation its weakest precondition was derived from — so a
    // refutation can be lifted into a concrete witness by walking the
    // wp chain back to the violated initial conjunct.
    // The provenance table, the dedup map and the relation store share
    // each relation via `Arc`, so a relation is deep-stored exactly
    // once however many structures (or threads) reference it.
    let mut frontier: VecDeque<usize> = VecDeque::new();
    let mut prov: Vec<(Arc<ConfRel>, Option<usize>)> = Vec::new();
    let mut seen: HashMap<Arc<ConfRel>, usize> = HashMap::new();
    let mut init: Vec<ConfRel> = Vec::new();
    if req.standard_init {
        for p in scope {
            if p.left.is_accepting() != p.right.is_accepting() {
                init.push(ConfRel::forbidden(*p));
            }
        }
    }
    init.extend(req.extra_init.iter().cloned());
    for rel in &init {
        if !seen.contains_key(rel) {
            let id = prov.len();
            let shared = Arc::new(rel.clone());
            seen.insert(shared.clone(), id);
            prov.push((shared, None));
            frontier.push_back(id);
        }
    }

    let mut relation = RelationStore::new();
    // Seals the run-wide statistics before returning any outcome, so
    // `extended` (= |R|), wall time and query counters are populated on
    // the `Equivalent`, `NotEquivalent` *and* `Aborted` paths alike. Only
    // this run's share of the (possibly warm) session counters is
    // charged, via the baseline delta.
    macro_rules! seal {
        ($relation_len:expr) => {{
            stats.wall_time = start.elapsed();
            let mut queries = solver.stats().clone();
            queries.absorb(&pool_stats(&main_pool, &worker_pools).delta_since(&session_base));
            stats.queries = queries;
            stats.extended = $relation_len as u64;
            warm.main_pool = Some(main_pool);
            warm.worker_pools = worker_pools;
        }};
    }

    let violation = |rho: &ConfRel,
                     id: usize,
                     prov: &[(Arc<ConfRel>, Option<usize>)],
                     solver: &mut SmtSolver,
                     stats: &mut RunStats|
     -> Option<Refutation> {
        query_violation(
            aut,
            &req.query,
            req.standard_init,
            opts,
            rho,
            id,
            prov,
            solver,
            stats,
        )
    };

    let mut batch: Vec<usize> = Vec::new();
    let mut generation: u64 = 0;
    loop {
        // One frontier generation per round: everything currently
        // queued was derived before any of it is processed, so the
        // entailment checks against the current `R` are independent.
        batch.clear();
        batch.extend(frontier.drain(..));
        if batch.is_empty() {
            break;
        }
        let _generation_span = trace::span_indexed(Phase::Generation, generation);
        generation += 1;

        // Warm probe: when the memo can replay the entire generation
        // (simulating the merge-time premise counts), skip the parallel
        // precompute — no solver contact at all for this generation.
        let memo_covered = memo_covers_generation(warm, &relation, &batch, &prov);

        // Parallel phase: precompute `⋀R ⊨ ψ` for the whole generation
        // against the immutable snapshot of the store.
        let verdicts: Vec<Option<bool>> = if threads > 1 && batch.len() > 1 && !memo_covered {
            let items: Vec<Arc<ConfRel>> = batch.iter().map(|&id| prov[id].0.clone()).collect();
            let verdicts =
                parallel_entailment(aut, &relation, &items, &mut worker_pools[..threads], cache);
            stats.parallel_batches += 1;
            stats.parallel_checks += items.len() as u64;
            verdicts.into_iter().map(Some).collect()
        } else {
            vec![None; batch.len()]
        };

        // Deterministic merge: replay the generation in frontier
        // order. `grew` tracks guards that gained a relation after the
        // snapshot — only those can invalidate a "not entailed"
        // verdict ("entailed" is monotone under growing `R`).
        let mut grew: HashSet<TemplatePair> = HashSet::new();
        for (bi, &id) in batch.iter().enumerate() {
            let psi = prov[id].0.clone();
            stats.iterations += 1;
            if let Some(limit) = opts.max_iterations {
                if stats.iterations > limit {
                    let len = relation.len();
                    seal!(len);
                    return Outcome::Aborted(format!(
                        "iteration budget {limit} exhausted with |R| = {len}"
                    ));
                }
            }
            stats.max_formula_size = stats.max_formula_size.max(psi.phi.size());

            stats.entailment_checks += 1;
            meters::ENTAILMENT_CHECKS.inc();
            let matching = relation.matching_count(psi.guard);
            stats.premises_matched += matching as u64;
            stats.premises_total += relation.len() as u64;
            let memo_key = (psi.guard, matching, psi.clone());
            let entailed = match warm.memo.get(&memo_key) {
                Some(&v) => {
                    stats.entailment_memo_hits += 1;
                    meters::ENTAILMENT_MEMO_HITS.inc();
                    v
                }
                None => {
                    let v = match verdicts[bi] {
                        Some(true) => true,
                        Some(false) if !grew.contains(&psi.guard) => false,
                        precomputed => {
                            if precomputed.is_some() {
                                stats.merge_rechecks += 1;
                            }
                            main_pool.check(aut, &relation.matching(psi.guard), &psi, cache)
                        }
                    };
                    warm.memo.insert(memo_key, v);
                    v
                }
            };
            if entailed {
                stats.skipped += 1;
                continue;
            }
            // Early failure: ψ will be part of R, and the Close step
            // requires φ ⊨ ψ.
            if opts.early_stop && psi.guard == req.query.guard {
                if let Some(refutation) = violation(&psi, id, &prov, solver, stats) {
                    let len = relation.len();
                    seal!(len);
                    return Outcome::NotEquivalent(refutation);
                }
            }
            for pred in scope {
                if let Some(chi) = wp(aut, &psi, pred, opts.leaps) {
                    stats.wp_generated += 1;
                    if !seen.contains_key(&chi) {
                        let cid = prov.len();
                        let shared = Arc::new(chi);
                        seen.insert(shared.clone(), cid);
                        prov.push((shared, Some(id)));
                        frontier.push_back(cid);
                    }
                }
            }
            grew.insert(psi.guard);
            relation.push(psi);
        }
    }

    // Close: φ ⊨ ⋀R, checked conjunct by conjunct (non-matching guards
    // are vacuous after template filtering).
    for rho in relation.iter() {
        if rho.guard != req.query.guard {
            continue;
        }
        let id = seen[rho];
        if let Some(refutation) = violation(rho, id, &prov, solver, stats) {
            let len = relation.len();
            seal!(len);
            return Outcome::NotEquivalent(refutation);
        }
    }

    let len = relation.len();
    seal!(len);
    let _certificate_span = trace::span(Phase::Certificate);
    Outcome::Equivalent(Certificate {
        leaps: opts.leaps,
        standard_init: req.standard_init,
        query: req.query.clone(),
        init,
        relation: relation.to_vec(),
    })
}

/// Whether the warm memo can replay every verdict of one frontier
/// generation. Simulates the merge's same-guard premise counts (a "not
/// entailed" verdict grows the guard's slice) without touching the store.
fn memo_covers_generation(
    warm: &WarmState,
    relation: &RelationStore,
    batch: &[usize],
    prov: &[(Arc<ConfRel>, Option<usize>)],
) -> bool {
    if warm.memo.is_empty() {
        return false;
    }
    let mut extra: HashMap<TemplatePair, usize> = HashMap::new();
    for &id in batch {
        let psi = &prov[id].0;
        let count =
            relation.matching_count(psi.guard) + extra.get(&psi.guard).copied().unwrap_or(0);
        match warm.memo.get(&(psi.guard, count, psi.clone())) {
            None => return false,
            Some(true) => {}
            Some(false) => {
                *extra.entry(psi.guard).or_insert(0) += 1;
            }
        }
    }
    true
}

/// Checks `φ ⊨ ρ`; on failure lifts the countermodel into a concrete,
/// confirmed, minimized witness via the counterexample engine. `id`
/// indexes `prov`, whose parent links trace ρ back through the wp
/// chain to the initial conjunct it was derived from; the chain shares
/// the provenance table's relations by `Arc`.
///
/// Runs on the per-query one-shot solver (not the warm sessions), so the
/// extracted countermodel — and therefore the witness — is independent of
/// engine warmth, session history and thread count.
///
/// # Panics
///
/// Panics when [`Options::strict_witness`] is set, the query is a
/// standard language-equivalence query, and the countermodel could not
/// be lifted into a confirmed witness.
#[allow(clippy::too_many_arguments)]
fn query_violation(
    aut: &Automaton,
    query: &ConfRel,
    standard_init: bool,
    opts: &Options,
    rho: &ConfRel,
    id: usize,
    prov: &[(Arc<ConfRel>, Option<usize>)],
    solver: &mut SmtSolver,
    stats: &mut RunStats,
) -> Option<Refutation> {
    let q = lower::lower(aut, std::slice::from_ref(query), rho);
    match solver.check_valid(&q.decls, &q.goal) {
        CheckResult::Valid => None,
        CheckResult::Invalid(model) => {
            let _witness_span = trace::span(Phase::Witness);
            let diagnostic = format!(
                "query {} does not entail {}\ncountermodel:\n{}",
                query.display(aut),
                rho.display(aut),
                model.display(&q.decls)
            );
            let mut chain: Vec<Arc<ConfRel>> = Vec::new();
            let mut cursor = Some(id);
            while let Some(i) = cursor {
                chain.push(prov[i].0.clone());
                cursor = prov[i].1;
            }
            let refutation = build_witness(aut, &chain, &q.decls, &q.vars, &model, diagnostic);
            match &refutation {
                Refutation::Witness(w) => {
                    stats.witnesses_confirmed += 1;
                    stats.witness_bits_minimized += (w.original_bits - w.packet.len()) as u64;
                }
                Refutation::Unconfirmed { .. } => stats.witnesses_unconfirmed += 1,
            }
            if let Some(error) =
                strict_witness_violation(opts.strict_witness, standard_init, &refutation)
            {
                panic!("{error}");
            }
            Some(refutation)
        }
    }
}

/// Precomputes the entailment verdicts of one frontier generation on
/// worker threads against an immutable snapshot of the relation store.
///
/// Scheduling is *work-stealing*: instead of pre-cutting the batch into
/// fixed per-worker chunks (which loses wall-clock whenever one chunk
/// holds the generation's long-tail entailments), every worker drains a
/// shared atomic cursor over the snapshot batch — an idle worker simply
/// claims the next unprocessed item, so the generation finishes when the
/// last *item* does, not when the unluckiest *chunk* does.
///
/// Each worker slot keeps a persistent [`SessionPool`] across batches —
/// and, under an engine, across whole queries — (premise clauses assert
/// once per slot for the run's lifetime) and all slots share the engine's
/// blast cache. Verdicts are exact, so the item-to-worker assignment never
/// affects results — only wall-clock time — and the sequential merge stays
/// deterministic.
fn parallel_entailment(
    aut: &Automaton,
    relation: &RelationStore,
    items: &[Arc<ConfRel>],
    worker_pools: &mut [SessionPool],
    cache: &SharedBlastCache,
) -> Vec<bool> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let n = items.len();
    let cursor = AtomicUsize::new(0);
    let verdicts: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    std::thread::scope(|s| {
        for pool in worker_pools.iter_mut() {
            let cursor = &cursor;
            let verdicts = &verdicts;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let psi = &items[i];
                let v = pool.check(aut, &relation.matching(psi.guard), psi, cache);
                verdicts[i].store(v, Ordering::Relaxed);
            });
        }
    });
    verdicts.into_iter().map(AtomicBool::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leapfrog_p4a::surface::parse;

    fn pair_a() -> (Automaton, StateId, Automaton, StateId) {
        let a = parse(
            "parser A { state s { extract(h, 4);
               select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let b = parse(
            "parser B { state s { extract(pre, 2); goto t }
                        state t { extract(suf, 2);
               select(pre) { 0b11 => accept; _ => reject; } } }",
        )
        .unwrap();
        let (sa, sb) = (a.state_by_name("s").unwrap(), b.state_by_name("s").unwrap());
        (a, sa, b, sb)
    }

    fn pair_b() -> (Automaton, StateId, Automaton, StateId) {
        let a = parse(
            "parser C { state s { extract(h, 2);
               select(h) { 0b10 => accept; _ => reject; } } }",
        )
        .unwrap();
        let sa = a.state_by_name("s").unwrap();
        (a.clone(), sa, a, sa)
    }

    fn cert_of(outcome: &Outcome) -> String {
        match outcome {
            Outcome::Equivalent(cert) => cert.to_json(),
            other => panic!("expected Equivalent, got {other:?}"),
        }
    }

    #[test]
    fn warm_capacity_evicts_without_changing_results() {
        let (a, sa, b, sb) = pair_a();
        let (c, sc, d, sd) = pair_b();
        let reference = {
            let mut unbounded = EngineConfig::new().threads(1).build();
            (
                cert_of(&unbounded.check(&a, sa, &b, sb)),
                cert_of(&unbounded.check(&c, sc, &d, sd)),
            )
        };
        let mut engine = EngineConfig::new().threads(1).warm_capacity(1).build();
        // Alternating pairs under capacity 1: every switch evicts the
        // other pair's warm state, yet every certificate is identical.
        for _ in 0..2 {
            assert_eq!(reference.0, cert_of(&engine.check(&a, sa, &b, sb)));
            assert_eq!(reference.1, cert_of(&engine.check(&c, sc, &d, sd)));
        }
        let stats = engine.stats();
        assert!(stats.warm_evictions > 0, "{stats:?}");
        assert!(stats.pair_evictions > 0, "{stats:?}");
        // Capacity 0 (unbounded) never evicts.
        let mut unbounded = EngineConfig::new().threads(1).build();
        unbounded.check(&a, sa, &b, sb);
        unbounded.check(&c, sc, &d, sd);
        assert_eq!(unbounded.stats().warm_evictions, 0);
        assert_eq!(unbounded.stats().pair_evictions, 0);
    }

    #[test]
    fn state_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!(
            "leapfrog-engine-state-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (a, sa, b, sb) = pair_a();

        let mut first = EngineConfig::new().threads(1).build();
        let cold_cert = cert_of(&first.check(&a, sa, &b, sb));
        assert_eq!(first.last_run_stats().entailment_memo_hits, 0);
        first.save_state(&dir).unwrap();

        // A fresh engine restarted from the saved state replays every
        // verdict from the reloaded memo — zero solver queries — and the
        // certificate is byte-identical.
        let mut second = EngineConfig::new().threads(1).with_state_dir(&dir).build();
        assert!(second.state_report().is_some(), "state must be reported");
        let warm_cert = cert_of(&second.check(&a, sa, &b, sb));
        assert_eq!(cold_cert, warm_cert);
        let stats = second.last_run_stats();
        assert!(
            stats.entailment_memo_hits > 0,
            "restart must replay the persisted memo: {stats:?}"
        );
        assert_eq!(
            stats.entailment_memo_hits, stats.entailment_checks,
            "every verdict comes from the memo: {stats:?}"
        );
        assert_eq!(stats.queries.queries, 0, "{stats:?}");

        // The memo document itself round-trips exactly.
        let memos = first.memos_to_json();
        let reparsed = memos_from_json(&memos).unwrap();
        assert!(!reparsed.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_state_dir_is_a_cold_start() {
        let engine = EngineConfig::new()
            .with_state_dir("/nonexistent/leapfrog-state")
            .build();
        assert!(engine.state_report().is_none());
    }

    #[test]
    fn route_fingerprint_is_stable_and_separates_pairs() {
        let (a, sa, b, sb) = pair_a();
        let (c, sc, d, sd) = pair_b();
        // Deterministic across calls (and, because DefaultHasher is
        // deterministically keyed, across processes of the same build):
        // the shard index `fp % N` never moves for a given pair.
        let fp = route_fingerprint(&a, sa, &b, sb);
        assert_eq!(fp, route_fingerprint(&a, sa, &b, sb));
        assert_eq!(fp, route_fingerprint(&a.clone(), sa, &b.clone(), sb));
        assert_ne!(fp, route_fingerprint(&c, sc, &d, sd));
        // The packed value is exactly the persisted warm-state key, so
        // routed memo import and intern-time claiming agree.
        let (half, half2) = pair_fingerprint(&a, sa, &b, sb);
        assert_eq!(fp, ((half as u128) << 64) | half2 as u128);
    }

    #[test]
    fn routed_memo_import_partitions_by_fingerprint() {
        let dir = std::env::temp_dir().join(format!(
            "leapfrog-engine-merge-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (a, sa, b, sb) = pair_a();
        let (c, sc, d, sd) = pair_b();

        // One engine (a 1-worker fleet) serves both pairs and saves.
        let mut donor = EngineConfig::new().threads(1).build();
        let cert_ab = cert_of(&donor.check(&a, sa, &b, sb));
        let cert_cd = cert_of(&donor.check(&c, sc, &d, sd));
        donor.save_state(&dir).unwrap();

        // Reload into a 2-shard fleet: each shard keeps only the memos
        // routed to it, and together they cover everything exactly once.
        let fp_ab = route_fingerprint(&a, sa, &b, sb);
        let fp_cd = route_fingerprint(&c, sc, &d, sd);
        let workers = 2u128;
        let mut shards: Vec<Engine> = (0..workers)
            .map(|shard| {
                let mut e = EngineConfig::new().threads(1).build();
                e.import_memos_routed(&dir, &|fp| fp % workers == shard)
                    .unwrap();
                e
            })
            .collect();
        let adopted: Vec<usize> = shards
            .iter()
            .map(|e| {
                e.saved_warm
                    .values()
                    .flat_map(|entries| entries.iter().map(|(_, m)| m.len()))
                    .sum()
            })
            .collect();
        assert!(adopted.iter().sum::<usize>() > 0, "{adopted:?}");
        for (shard, engine) in shards.iter().enumerate() {
            for key in engine.saved_warm.keys() {
                let packed = ((key.0 as u128) << 64) | key.1 as u128;
                assert_eq!(
                    packed % workers,
                    shard as u128,
                    "memo routed to the wrong shard"
                );
            }
        }

        // Each routed shard replays its own pair purely from the memo,
        // byte-identical to the donor's certificate.
        let home_ab = (fp_ab % workers) as usize;
        let home_cd = (fp_cd % workers) as usize;
        assert_eq!(cert_ab, cert_of(&shards[home_ab].check(&a, sa, &b, sb)));
        let run = shards[home_ab].last_run_stats();
        assert!(run.entailment_memo_hits > 0, "{run:?}");
        assert_eq!(run.entailment_memo_hits, run.entailment_checks);
        assert_eq!(cert_cd, cert_of(&shards[home_cd].check(&c, sc, &d, sd)));
        let run = shards[home_cd].last_run_stats();
        assert!(run.entailment_memo_hits > 0, "{run:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evicted_pair_slots_are_recycled_and_stale_handles_detected() {
        let (a, sa, b, sb) = pair_a();
        let (c, sc, d, sd) = pair_b();
        let mut engine = EngineConfig::new().threads(1).warm_capacity(1).build();
        let stale = engine.prepare_pair(&a, sa, &b, sb);
        // Interning + checking a second pair evicts the first under
        // capacity 1 and must reuse its slot rather than growing the
        // table.
        assert!(engine.check(&c, sc, &d, sd).is_equivalent());
        assert!(engine.stats().pair_evictions > 0);
        let slots_after_eviction = engine.pairs.len();
        // The evicted pair's slot is tombstoned, and a stale handle into
        // it is detected instead of silently resolving to another pair.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.sum_automaton(stale);
        }));
        assert!(err.is_err(), "a stale PairId must not resolve");
        // Re-interning the evicted pair recycles the freed slot (no
        // unbounded slot growth for a long-lived daemon) and yields a
        // fresh, working handle.
        let fresh = engine.prepare_pair(&a, sa, &b, sb);
        assert_eq!(
            engine.pairs.len(),
            slots_after_eviction,
            "the freed slot must be reused, not a new one pushed"
        );
        assert!(engine.sum_automaton(fresh).num_states() > 0);
    }
}
