//! Benches for the substrates the reproduction had to build: the CDCL SAT
//! solver, the bit-blaster, the P4A interpreter, and bitvector primitives.
//! These are not paper experiments; they size the building blocks so
//! regressions in the lower layers are visible independently of Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use leapfrog_bitvec::BitVec;
use leapfrog_p4a::semantics::Config;
use leapfrog_sat::{Lit, SolveResult, Solver};
use leapfrog_suite::utility::mpls;
use leapfrog_suite::workload::packets;

fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let grid: Vec<Vec<_>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &grid {
        let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for row2 in grid.iter().skip(p1 + 1) {
                s.add_clause(&[Lit::neg(grid[p1][h]), Lit::neg(row2[h])]);
            }
        }
    }
    s
}

fn substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");

    g.bench_function("sat/pigeonhole_7_in_6", |b| {
        b.iter(|| {
            let mut s = pigeonhole(7, 6);
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
        })
    });

    g.bench_function("bitvec/concat_slice_1k", |b| {
        let x = BitVec::ones(1024);
        let y = BitVec::zeros(1024);
        b.iter(|| {
            let z = x.concat(&y);
            z.slice(100, 1900)
        })
    });

    let aut = mpls::reference();
    let q1 = aut.state_by_name("q1").unwrap();
    let pkts = packets(&aut, q1, 12, 64, 0xBEEF);
    g.bench_function("p4a/interpret_mpls_64_packets", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for p in &pkts {
                if Config::initial(&aut, q1).accepts_chunked(&aut, p) {
                    accepted += 1;
                }
            }
            accepted
        })
    });

    g.bench_function("p4a/interpret_bit_by_bit", |b| {
        let p = &pkts[0];
        b.iter(|| Config::initial(&aut, q1).accepts(&aut, p))
    });

    g.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
