//! Symbolic vs. explicit-state equivalence checking (§4's motivation):
//! as header widths grow, the naive product construction over concrete
//! configurations explodes while the symbolic checker's cost stays
//! essentially flat. Reproduces the paper's intractability argument as a
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leapfrog::checker::check_language_equivalence;
use leapfrog::explicit::{check_explicit, ExplicitResult};
use leapfrog_p4a::ast::Automaton;
use leapfrog_p4a::surface::parse;

/// A pair of equivalent parsers over a `width`-bit header: one reads it
/// whole, the other in two halves.
fn pair(width: usize) -> (Automaton, Automaton) {
    let half = width / 2;
    let a = parse(&format!(
        "parser A {{ state s {{ extract(h, {width});
           select(h[0:0]) {{ 0b1 => accept; _ => reject; }} }} }}"
    ))
    .unwrap();
    let b = parse(&format!(
        "parser B {{ state s {{ extract(x, {half}); goto t }}
                     state t {{ extract(y, {});
           select(x[0:0]) {{ 0b1 => accept; _ => reject; }} }} }}",
        width - half
    ))
    .unwrap();
    (a, b)
}

fn explicit_vs_symbolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline/explicit_vs_symbolic");
    g.sample_size(10);
    for width in [4usize, 8, 12] {
        let (a, b) = pair(width);
        let qa = a.state_by_name("s").unwrap();
        let qb = b.state_by_name("s").unwrap();
        g.bench_with_input(BenchmarkId::new("symbolic", width), &width, |bench, _| {
            bench.iter(|| assert!(check_language_equivalence(&a, qa, &b, qb).is_equivalent()))
        });
        g.bench_with_input(BenchmarkId::new("explicit", width), &width, |bench, _| {
            bench.iter(|| {
                // Budget of 200k pairs: width 12 already exhausts it,
                // demonstrating the blow-up (the assert tolerates both).
                let r = check_explicit(&a, qa, &b, qb, 200_000);
                assert!(!matches!(r, ExplicitResult::NotEquivalent(_)));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, explicit_vs_symbolic);
criterion_main!(benches);
