//! Criterion benches for the §7.3 ablation: the State Rearrangement case
//! study with leaps and reachability pruning toggled. The paper reports
//! 30 s → 42 min when leaps are disabled and non-termination without
//! pruning; the shape to check here is a large slowdown per disabled
//! optimization. (`cargo run -p leapfrog-bench --bin ablation` prints the
//! iteration/scope counters that explain the gap.)

use criterion::{criterion_group, criterion_main, Criterion};
use leapfrog::Options;
use leapfrog_bench::rows::run_row;
use leapfrog_suite::utility::state_rearrangement;

fn ablation(c: &mut Criterion) {
    let bench = state_rearrangement::state_rearrangement_benchmark();
    let mut g = c.benchmark_group("ablation/state_rearrangement");
    g.sample_size(10);
    // The pruning-off configurations take minutes per run at this size;
    // they are measured once by the `ablation` binary instead.
    for (label, leaps, pruning) in [
        ("leaps_on__pruning_on", true, true),
        ("leaps_off_pruning_on", false, true),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let options = Options {
                    leaps,
                    reach_pruning: pruning,
                    ..Options::default()
                };
                let row = run_row(&bench, options);
                assert!(row.verified);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
