//! Criterion benches for the Table 2 utility rows (§7.1): one benchmark
//! per case study, measuring the full push-button check (reachability
//! analysis, worklist, SMT entailments, Close).

use criterion::{criterion_group, criterion_main, Criterion};
use leapfrog::Options;
use leapfrog_bench::rows::{run_external_filtering, run_relational_verification, run_row};
use leapfrog_suite::utility::{ip_options, mpls, state_rearrangement, vlan_init};
use leapfrog_suite::Scale;

fn utility(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/utility");
    g.sample_size(10);

    let rearrangement = state_rearrangement::state_rearrangement_benchmark();
    g.bench_function("state_rearrangement", |b| {
        b.iter(|| {
            let row = run_row(&rearrangement, Options::default());
            assert!(row.verified);
        })
    });

    let options = ip_options::ip_options_benchmark(Scale::Small);
    g.bench_function("variable_length_parsing", |b| {
        b.iter(|| {
            let row = run_row(&options, Options::default());
            assert!(row.verified);
        })
    });

    let vlan = vlan_init::vlan_init_benchmark();
    g.bench_function("header_initialization", |b| {
        b.iter(|| {
            let row = run_row(&vlan, Options::default());
            assert!(row.verified);
        })
    });

    let speculative = mpls::mpls_benchmark();
    g.bench_function("speculative_loop", |b| {
        b.iter(|| {
            let row = run_row(&speculative, Options::default());
            assert!(row.verified);
        })
    });

    g.bench_function("relational_verification", |b| {
        b.iter(|| {
            let row = run_relational_verification(Options::default());
            assert!(row.verified);
        })
    });

    g.bench_function("external_filtering", |b| {
        b.iter(|| {
            let row = run_external_filtering(Options::default());
            assert!(row.verified);
        })
    });

    g.finish();
}

criterion_group!(benches, utility);
criterion_main!(benches);
