//! Criterion benches for the Table 2 applicability rows (§7.2):
//! self-comparison of the four scenario parsers. Criterion runs use the
//! `LEAPFROG_SCALE` knob (default small); the `table2` binary measures the
//! full-scale single-shot rows.

use criterion::{criterion_group, criterion_main, Criterion};
use leapfrog::Options;
use leapfrog_bench::rows::run_row;
use leapfrog_suite::applicability::all_benchmarks;
use leapfrog_suite::Scale;

fn applicability(c: &mut Criterion) {
    let scale = Scale::from_env();
    let mut g = c.benchmark_group("table2/applicability");
    g.sample_size(10);
    for bench in all_benchmarks(scale) {
        let id = bench.name.to_lowercase().replace(' ', "_");
        g.bench_function(id, |b| {
            b.iter(|| {
                let row = run_row(&bench, Options::default());
                assert!(row.verified, "{} failed to verify", bench.name);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, applicability);
criterion_main!(benches);
