//! Criterion bench for the translation-validation row (§7.2, Figure 8):
//! compile the Edge parser to hardware tables, back-translate, and prove
//! the round trip preserves the language. The compile+translate phases
//! are also benched separately to show where time goes.

use criterion::{criterion_group, criterion_main, Criterion};
use leapfrog::Options;
use leapfrog_bench::rows::run_translation_validation;
use leapfrog_hwgen::{back_translate, compile, HwBudget};
use leapfrog_suite::applicability::edge;
use leapfrog_suite::Scale;

fn translation_validation(c: &mut Criterion) {
    let scale = Scale::from_env();
    let mut g = c.benchmark_group("table2/translation_validation");
    g.sample_size(10);

    let parser = edge(scale);
    let start = parser.state_by_name("parse_eth").unwrap();
    g.bench_function("compile_to_tables", |b| {
        b.iter(|| compile(&parser, start, &HwBudget::default()).unwrap())
    });

    let hw = compile(&parser, start, &HwBudget::default()).unwrap();
    g.bench_function("back_translate", |b| b.iter(|| back_translate(&hw)));

    g.bench_function("full_round_trip_check", |b| {
        b.iter(|| {
            let row = run_translation_validation(scale, Options::default());
            assert!(row.verified);
        })
    });

    g.finish();
}

criterion_group!(benches, translation_validation);
criterion_main!(benches);
