//! Criterion benches for individual SMT entailment queries (§7.3 reports
//! that all queries finished within 10 s, 99% within 5 s). These measure
//! the latency of the kinds of queries the worklist issues: an
//! acceptance-compatibility check, a buffer-equality entailment, and a
//! quantified (CEGAR) entailment.

use criterion::{criterion_group, criterion_main, Criterion};
use leapfrog_logic::confrel::{BitExpr, ConfRel, Pure, Side, VarId};
use leapfrog_logic::lower::entails_stateless;
use leapfrog_logic::templates::{Template, TemplatePair};
use leapfrog_p4a::ast::Target;
use leapfrog_p4a::sum::sum;
use leapfrog_suite::utility::mpls;

fn smt_latency(c: &mut Criterion) {
    let s = sum(&mpls::reference(), &mpls::vectorized());
    let aut = &s.automaton;
    let q1 = aut.state_by_name("l.q1").unwrap();
    let q3 = aut.state_by_name("r.q3").unwrap();
    let guard = TemplatePair::new(
        Template {
            target: Target::State(q1),
            buf_len: 16,
        },
        Template {
            target: Target::State(q3),
            buf_len: 16,
        },
    );

    let mut g = c.benchmark_group("smt/query_latency");

    // Unsatisfiable-guard query: ⊥ conclusion with no helpful premise.
    let falsum = ConfRel::forbidden(TemplatePair::new(Template::accept(), Template::reject()));
    g.bench_function("acceptance_mismatch", |b| {
        b.iter(|| assert!(!entails_stateless(aut, &[], &falsum)))
    });

    // 16-bit buffer equality entails a slice equality.
    let premise = ConfRel {
        guard,
        vars: vec![],
        phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
    };
    let conclusion = ConfRel {
        guard,
        vars: vec![],
        phi: Pure::eq(
            BitExpr::Slice(Box::new(BitExpr::Buf(Side::Left)), 4, 8),
            BitExpr::Slice(Box::new(BitExpr::Buf(Side::Right)), 4, 8),
        ),
    };
    g.bench_function("buffer_slice_entailment", |b| {
        b.iter(|| {
            assert!(entails_stateless(
                aut,
                std::slice::from_ref(&premise),
                &conclusion
            ))
        })
    });

    // Quantified premise: forces the CEGAR loop.
    let quantified = ConfRel {
        guard,
        vars: vec![16],
        phi: Pure::eq(
            BitExpr::concat(BitExpr::Buf(Side::Left), BitExpr::Var(VarId(0))),
            BitExpr::concat(BitExpr::Buf(Side::Right), BitExpr::Var(VarId(0))),
        ),
    };
    let concl = ConfRel {
        guard,
        vars: vec![],
        phi: Pure::eq(BitExpr::Buf(Side::Left), BitExpr::Buf(Side::Right)),
    };
    g.bench_function("quantified_cegar_entailment", |b| {
        b.iter(|| {
            assert!(entails_stateless(
                aut,
                std::slice::from_ref(&quantified),
                &concl
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, smt_latency);
criterion_main!(benches);
