//! A peak-tracking global allocator, reproducing Table 2's Memory column.
//!
//! The paper reports maximum resident size of the Coq process; the
//! equivalent observable for a native reproduction is the peak number of
//! live heap bytes. Install [`PeakAlloc`] as the global allocator in a
//! binary and read [`PeakAlloc::peak_bytes`] after each case study (reset
//! in between).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`System`]-backed allocator that tracks current and peak live bytes.
pub struct PeakAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    /// Creates the allocator (const, for use in a `static`).
    pub const fn new() -> PeakAlloc {
        PeakAlloc {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Peak live bytes since the last [`PeakAlloc::reset`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Currently live bytes.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current level.
    pub fn reset(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn add(&self, size: usize) {
        let now = self.current.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, size: usize) {
        self.current.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers to `System` for all allocation; only bookkeeping added.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            self.sub(layout.size());
            self.add(new_size);
        }
        p
    }
}

/// Formats a byte count like Table 2 (GB with two decimals, falling back
/// to MB/KB for small values).
pub fn human_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2} MB", b / (KB * KB))
    } else {
        format!("{:.2} KB", b / KB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "0.50 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
        assert!(human_bytes(2 * 1024 * 1024 * 1024).ends_with("GB"));
    }

    #[test]
    fn tracking_arithmetic() {
        let a = PeakAlloc::new();
        a.add(100);
        a.add(200);
        a.sub(150);
        assert_eq!(a.current_bytes(), 150);
        assert_eq!(a.peak_bytes(), 300);
        a.reset();
        assert_eq!(a.peak_bytes(), 150);
    }
}
