//! Shared harness for the Leapfrog evaluation: a peak-tracking allocator
//! (Table 2's Memory column), row runners for every case study, and scaled
//! -down fixtures for the ablation benchmarks.

pub mod alloc_track;
pub mod rows;

pub use alloc_track::PeakAlloc;
pub use rows::{run_row, RowResult};
