//! Row runners: one function per Table 2 row, returning the measured
//! columns. Shared by the `table2` binary and the criterion benches.
//!
//! Every runner drives a caller-owned persistent [`Engine`] (the `_in`
//! forms); the plain forms are compat wrappers over a transient one. The
//! `table2` binary runs each row twice through one long-lived engine, so
//! the emitted rows carry warm-vs-cold columns (`warm_speedup`,
//! `sessions_reused`, `sum_cache_hits`, `entailment_memo_hits`).

use std::time::{Duration, Instant};

use leapfrog::{Engine, EngineConfig, Options, Outcome, RunStats};
use leapfrog_obs::PhaseBreakdown;
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_suite::applicability;
use leapfrog_suite::metrics::Table2Metrics;
use leapfrog_suite::utility::sloppy_strict;
#[cfg(test)]
use leapfrog_suite::utility::{mpls, state_rearrangement};
use leapfrog_suite::{Benchmark, Scale};

/// One measured Table 2 row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Row name (matches the paper's).
    pub name: String,
    /// Size metrics.
    pub metrics: Table2Metrics,
    /// Wall-clock runtime of the check.
    pub runtime: Duration,
    /// Whether the property was verified.
    pub verified: bool,
    /// SMT queries issued.
    pub queries: u64,
    /// Relation size |R|.
    pub relation_size: u64,
    /// Fraction of queries within 5 s (paper §7.3 reports 99%).
    pub queries_within_5s: f64,
    /// Worker threads the frontier ran on.
    pub threads: usize,
    /// Fraction of asserted conjuncts served from the cross-query blast
    /// cache.
    pub blast_cache_hit_rate: f64,
    /// Fraction of linear-scan premise work avoided by the guard index.
    pub index_hit_rate: f64,
    /// Wall-time speedup versus a `threads = 1` run of the same row
    /// (`None` when no baseline was measured).
    pub speedup: Option<f64>,
    /// CEGAR refinement rounds across all solver queries of the run.
    pub cegar_rounds: u64,
    /// `∀`-blocks actually validated against candidate models (the
    /// variable-indexed oracle skips unchanged-support blocks, so this is
    /// ≤ `blocks_considered`).
    pub blocks_validated: u64,
    /// `∀`-blocks a naive per-round sweep would have validated.
    pub blocks_considered: u64,
    /// Guard-session context rebuilds performed by the clause-budget GC.
    pub session_rebuilds: u64,
    /// Peak live-clause count in any single entailment-session context.
    pub peak_live_clauses: u64,
    /// CDCL conflicts across every SAT solve of the run.
    pub sat_conflicts: u64,
    /// CDCL unit propagations across every SAT solve of the run.
    pub sat_propagations: u64,
    /// Configured SAT portfolio lanes (0 when no portfolio raced — the
    /// single-solver baseline).
    pub portfolio_lanes: u64,
    /// Portfolio races won per lane index (all-zero without a portfolio).
    pub portfolio_wins: Vec<u64>,
    /// Cold wall-clock of this row on a transient engine pinned to 1
    /// worker thread — the intra-query parallel axis's baseline point
    /// (`None` when the host cannot measure it).
    pub cold_t1: Option<Duration>,
    /// Cold wall-clock of this row on a transient engine pinned to 4
    /// worker threads — the intra-query parallel axis's scaled point.
    pub cold_t4: Option<Duration>,
    /// Wall-time speedup of a warm re-run of this row through the same
    /// engine (`None` until the warm pass is measured).
    pub warm_speedup: Option<f64>,
    /// Warm guard sessions the warm re-run attached to.
    pub sessions_reused: u64,
    /// Sum constructions served from the engine's intern table on the
    /// warm re-run.
    pub sum_cache_hits: u64,
    /// Entailment verdicts the warm re-run replayed from the engine memo.
    pub entailment_memo_hits: u64,
    /// The confirmed witness, when the run refuted the property — fed into
    /// the regression corpus by the `table2` binary.
    pub witness: Option<leapfrog_cex::Witness>,
    /// The equivalence certificate the run produced, rendered as JSON —
    /// the exact document the independent `leapfrog-certcheck` trust root
    /// re-discharges (`None` when the run refuted the property).
    pub certificate: Option<String>,
    /// Wall-clock of the independent trust-root re-validation of this
    /// row's certificate (`None` until the `table2` binary runs it).
    pub certcheck_secs: Option<f64>,
    /// Per-phase time breakdown from the span tracer (empty unless
    /// tracing was enabled for the run).
    pub phases: PhaseBreakdown,
}

impl RowResult {
    /// Copies the warm-reuse columns out of a warm re-run of this row.
    pub fn absorb_warm(&mut self, warm: &RowResult) {
        self.warm_speedup = Some(self.runtime.as_secs_f64() / warm.runtime.as_secs_f64().max(1e-9));
        self.sessions_reused = warm.sessions_reused;
        self.sum_cache_hits = warm.sum_cache_hits;
        self.entailment_memo_hits = warm.entailment_memo_hits;
    }
}

/// Runs a plain language-equivalence benchmark through a persistent
/// engine.
pub fn run_row_in(engine: &mut Engine, bench: &Benchmark) -> RowResult {
    let start = Instant::now();
    let outcome = engine.check(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
    );
    finish(
        bench.name,
        bench.metrics(),
        start,
        engine.last_run_stats(),
        &outcome,
        bench.expect_equivalent,
    )
}

/// [`run_row_in`] over a transient engine configured from `options`.
pub fn run_row(bench: &Benchmark, options: Options) -> RowResult {
    run_row_in(
        &mut Engine::new(EngineConfig::from_options(&options)),
        bench,
    )
}

/// The external-filtering row: sloppy vs strict modulo an EtherType filter
/// (§7.1), posed by replacing the initial relation.
pub fn run_external_filtering_in(engine: &mut Engine) -> RowResult {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let metrics = Table2Metrics::for_pair(&sloppy, &strict);
    let start = Instant::now();
    let pid = engine.prepare_pair(&sloppy, ql, &strict, qr);
    let reach = engine.reachable(pid);
    let init = sloppy_strict::external_filter_init(engine.sum_info(pid), &reach);
    let mut request = engine.standard_request(pid);
    request.standard_init = false;
    request.extra_init = init;
    let outcome = engine.run_prepared(pid, &request);
    finish(
        "External filtering",
        metrics,
        start,
        engine.last_run_stats(),
        &outcome,
        true,
    )
}

/// [`run_external_filtering_in`] over a transient engine.
pub fn run_external_filtering(options: Options) -> RowResult {
    run_external_filtering_in(&mut Engine::new(EngineConfig::from_options(&options)))
}

/// The relational-verification row: store correspondence at acceptance
/// (§7.1), posed by replacing the initial relation.
pub fn run_relational_verification_in(engine: &mut Engine) -> RowResult {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let metrics = Table2Metrics::for_pair(&sloppy, &strict);
    let start = Instant::now();
    let pid = engine.prepare_pair(&sloppy, ql, &strict, qr);
    let init = sloppy_strict::store_correspondence_init(engine.sum_info(pid));
    let mut request = engine.standard_request(pid);
    request.standard_init = false;
    request.extra_init = init;
    let outcome = engine.run_prepared(pid, &request);
    finish(
        "Relational verification",
        metrics,
        start,
        engine.last_run_stats(),
        &outcome,
        true,
    )
}

/// [`run_relational_verification_in`] over a transient engine.
pub fn run_relational_verification(options: Options) -> RowResult {
    run_relational_verification_in(&mut Engine::new(EngineConfig::from_options(&options)))
}

/// The automaton pair the translation-validation row checks: the Edge
/// parser and its hardware-table round trip. Exposed so the `table2`
/// binary can rebuild the sum automaton the row's certificate is stated
/// over and hand both to the independent trust root.
pub fn translation_validation_pair(scale: Scale) -> (Automaton, StateId, Automaton, StateId) {
    let edge = applicability::edge(scale);
    let start_state = edge.state_by_name("parse_eth").unwrap();
    let hw = leapfrog_hwgen::compile(&edge, start_state, &leapfrog_hwgen::HwBudget::default())
        .expect("the Edge parser compiles to hardware tables");
    let (back, back_start) = leapfrog_hwgen::back_translate(&hw);
    let back_start = back.state_by_name(&back_start).unwrap();
    (edge, start_state, back, back_start)
}

/// The translation-validation row: compile the Edge parser to hardware
/// tables, translate the tables back, and prove the round trip preserves
/// the language (§7.2, Figure 8).
pub fn run_translation_validation_in(engine: &mut Engine, scale: Scale) -> RowResult {
    let (edge, start_state, back, back_start) = translation_validation_pair(scale);
    let metrics = Table2Metrics::for_pair(&edge, &back);
    let start = Instant::now();
    let outcome = engine.check(&edge, start_state, &back, back_start);
    finish(
        "Translation Validation",
        metrics,
        start,
        engine.last_run_stats(),
        &outcome,
        true,
    )
}

/// [`run_translation_validation_in`] over a transient engine.
pub fn run_translation_validation(scale: Scale, options: Options) -> RowResult {
    run_translation_validation_in(
        &mut Engine::new(EngineConfig::from_options(&options)),
        scale,
    )
}

/// All six utility rows plus the applicability self-comparisons at the
/// given scale (without translation validation, which needs the hwgen
/// pipeline and is run separately). Re-exported from the suite, where the
/// wire server resolves named rows against the same list.
pub use leapfrog_suite::standard_benchmarks;

/// Renders measured rows as a machine-readable JSON document (the repo has
/// no serde; the format is flat enough to emit by hand). Each entry pairs
/// a row with its peak heap measurement, when one was taken.
/// `batch_parallel_speedup` is the whole-table `check_batch` wall-clock
/// ratio at 1 vs 4 worker threads — the cross-query parallel axis. It is
/// measured whenever the host has ≥ 2 cores (or `--batch` forces it);
/// `cores` records the host parallelism so a `null` ratio is readable as
/// "not measurable here" rather than "missing".
pub fn rows_to_json(
    rows: &[(RowResult, Option<usize>)],
    sanity_witness_confirmed: bool,
    batch_parallel_speedup: Option<f64>,
    cores: usize,
) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, (row, peak)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"branched_bits\": {}, \
             \"total_bits\": {}, \"runtime_secs\": {:.6}, \"peak_bytes\": {}, \
             \"verified\": {}, \"relation_size\": {}, \"queries\": {}, \
             \"queries_within_5s\": {:.4}, \"threads\": {}, \
             \"blast_cache_hit_rate\": {:.4}, \"index_hit_rate\": {:.4}, \
             \"speedup\": {}, \"cegar_rounds\": {}, \"blocks_validated\": {}, \
             \"blocks_considered\": {}, \"session_rebuilds\": {}, \
             \"peak_live_clauses\": {}, \"sat_conflicts\": {}, \
             \"sat_propagations\": {}, \"portfolio_lanes\": {}, \
             \"portfolio_win_histogram\": [{}], \"cold_t1_secs\": {}, \
             \"cold_t4_secs\": {}, \"warm_speedup\": {}, \
             \"sessions_reused\": {}, \"sum_cache_hits\": {}, \
             \"entailment_memo_hits\": {}, \"certcheck_secs\": {}, \
             \"phases\": {}}}{}\n",
            esc(&row.name),
            row.metrics.states,
            row.metrics.branched_bits,
            row.metrics.total_bits,
            row.runtime.as_secs_f64(),
            peak.map(|p| p.to_string()).unwrap_or_else(|| "null".into()),
            row.verified,
            row.relation_size,
            row.queries,
            row.queries_within_5s,
            row.threads,
            row.blast_cache_hit_rate,
            row.index_hit_rate,
            row.speedup
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "null".into()),
            row.cegar_rounds,
            row.blocks_validated,
            row.blocks_considered,
            row.session_rebuilds,
            row.peak_live_clauses,
            row.sat_conflicts,
            row.sat_propagations,
            row.portfolio_lanes,
            row.portfolio_wins
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            row.cold_t1
                .map(|d| format!("{:.6}", d.as_secs_f64()))
                .unwrap_or_else(|| "null".into()),
            row.cold_t4
                .map(|d| format!("{:.6}", d.as_secs_f64()))
                .unwrap_or_else(|| "null".into()),
            row.warm_speedup
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "null".into()),
            row.sessions_reused,
            row.sum_cache_hits,
            row.entailment_memo_hits,
            row.certcheck_secs
                .map(|s| format!("{s:.6}"))
                .unwrap_or_else(|| "null".into()),
            phases_json(&row.phases),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"sanity_check_witness_confirmed\": {sanity_witness_confirmed},\n  \
         \"batch_parallel_speedup\": {},\n  \"cores\": {cores}\n}}\n",
        batch_parallel_speedup
            .map(|s| format!("{s:.4}"))
            .unwrap_or_else(|| "null".into()),
    ));
    out
}

/// Renders a phase breakdown as a JSON array in canonical phase order —
/// `[]` when tracing was off for the run.
pub fn phases_json(p: &PhaseBreakdown) -> String {
    let entries: Vec<String> = p
        .entries
        .iter()
        .map(|e| {
            format!(
                "{{\"phase\": \"{}\", \"count\": {}, \"nanos\": {}}}",
                e.phase.as_str(),
                e.count,
                e.nanos
            )
        })
        .collect();
    format!("[{}]", entries.join(", "))
}

fn finish(
    name: &str,
    metrics: Table2Metrics,
    start: Instant,
    stats: &RunStats,
    outcome: &Outcome,
    expect_equivalent: bool,
) -> RowResult {
    let runtime = start.elapsed();
    let verified = outcome.is_equivalent() == expect_equivalent;
    RowResult {
        name: name.to_string(),
        metrics,
        runtime,
        verified,
        queries: stats.queries.queries,
        relation_size: stats.extended,
        queries_within_5s: stats.queries.fraction_within(Duration::from_secs(5)),
        threads: stats.threads,
        blast_cache_hit_rate: stats.queries.blast_cache_hit_rate(),
        index_hit_rate: stats.index_hit_rate(),
        speedup: None,
        cegar_rounds: stats.queries.cegar_rounds,
        blocks_validated: stats.queries.blocks_validated,
        blocks_considered: stats.queries.blocks_considered,
        session_rebuilds: stats.queries.session_rebuilds,
        peak_live_clauses: stats.queries.live_clauses_peak,
        sat_conflicts: stats.queries.sat.conflicts,
        sat_propagations: stats.queries.sat.propagations,
        portfolio_lanes: stats.queries.portfolio.lanes,
        portfolio_wins: stats.queries.portfolio.wins.to_vec(),
        cold_t1: None,
        cold_t4: None,
        warm_speedup: None,
        sessions_reused: stats.sessions_reused,
        sum_cache_hits: stats.sum_cache_hits,
        entailment_memo_hits: stats.entailment_memo_hits,
        witness: outcome.witness().cloned(),
        certificate: match outcome {
            Outcome::Equivalent(cert) => Some(cert.to_json()),
            _ => None,
        },
        certcheck_secs: None,
        phases: stats.phases.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_rearrangement_row_verifies() {
        let bench = state_rearrangement::state_rearrangement_benchmark();
        let row = run_row(&bench, Options::default());
        assert!(row.verified, "state rearrangement must verify");
        assert!(row.queries > 0);
        let cert = row
            .certificate
            .as_deref()
            .expect("equivalent row carries its certificate");
        assert!(
            cert.contains("\"relation\""),
            "certificate JSON is complete"
        );
        assert!(row.threads >= 1);
        assert!((0.0..=1.0).contains(&row.blast_cache_hit_rate));
        assert!((0.0..=1.0).contains(&row.index_hit_rate));
    }

    #[test]
    fn rows_json_carries_pipeline_fields() {
        let bench = state_rearrangement::state_rearrangement_benchmark();
        let mut row = run_row(&bench, Options::default());
        row.speedup = Some(1.25);
        row.warm_speedup = Some(2.0);
        row.cold_t1 = Some(Duration::from_millis(500));
        row.cold_t4 = Some(Duration::from_millis(250));
        row.certcheck_secs = Some(0.125);
        let json = rows_to_json(&[(row, Some(1024))], true, Some(1.5), 4);
        for key in [
            "\"threads\"",
            "\"blast_cache_hit_rate\"",
            "\"index_hit_rate\"",
            "\"speedup\": 1.2500",
            "\"cegar_rounds\"",
            "\"blocks_validated\"",
            "\"blocks_considered\"",
            "\"session_rebuilds\"",
            "\"peak_live_clauses\"",
            "\"sat_conflicts\"",
            "\"sat_propagations\"",
            "\"portfolio_lanes\"",
            "\"portfolio_win_histogram\"",
            "\"cold_t1_secs\": 0.500000",
            "\"cold_t4_secs\": 0.250000",
            "\"warm_speedup\": 2.0000",
            "\"certcheck_secs\": 0.125000",
            "\"sessions_reused\"",
            "\"sum_cache_hits\"",
            "\"entailment_memo_hits\"",
            "\"phases\"",
            "\"batch_parallel_speedup\": 1.5000",
            "\"cores\": 4",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn oracle_counters_populated_and_bounded() {
        let bench = state_rearrangement::state_rearrangement_benchmark();
        let row = run_row(&bench, Options::default());
        assert!(row.cegar_rounds > 0, "CEGAR must run on this row");
        assert!(
            row.blocks_validated <= row.blocks_considered,
            "the oracle can only skip validations: {} > {}",
            row.blocks_validated,
            row.blocks_considered
        );
        assert!(row.witness.is_none(), "an equivalent row has no witness");
    }

    #[test]
    fn refuted_row_carries_its_witness() {
        let mutant = &leapfrog_suite::mutants::mutant_benchmarks()[0];
        let row = run_row(mutant, Options::default());
        assert!(row.verified, "the mutant is expected inequivalent");
        let w = row.witness.as_ref().expect("confirmed witness on the row");
        assert!(w.check());
        assert!(
            row.certificate.is_none(),
            "a refuted row has no certificate"
        );
    }

    #[test]
    fn speculative_loop_row_verifies() {
        let row = run_row(&mpls::mpls_benchmark(), Options::default());
        assert!(row.verified);
        assert!(row.relation_size > 0);
    }

    #[test]
    fn warm_rerun_through_one_engine_shows_reuse() {
        // The serving pattern the `table2` binary uses: run a row twice
        // through one engine; the warm pass must report reuse and agree on
        // the verdict and relation size.
        let bench = state_rearrangement::state_rearrangement_benchmark();
        let mut engine = Engine::new(EngineConfig::from_options(&Options::default()));
        let mut cold = run_row_in(&mut engine, &bench);
        let warm = run_row_in(&mut engine, &bench);
        assert!(cold.verified && warm.verified);
        assert_eq!(cold.relation_size, warm.relation_size);
        assert!(warm.sessions_reused > 0, "warm pass must attach sessions");
        assert!(warm.sum_cache_hits > 0, "sum must be interned");
        assert!(warm.entailment_memo_hits > 0, "memo must replay verdicts");
        cold.absorb_warm(&warm);
        assert!(cold.warm_speedup.is_some());
        assert_eq!(cold.sessions_reused, warm.sessions_reused);
    }
}
