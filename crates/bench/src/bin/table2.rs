//! Regenerates Table 2 of the paper: every case-study row with States /
//! Branched bits / Total bits / Runtime / Memory, plus the §7.3 SMT
//! latency summary and the §7.1 sanity check on inequivalent parsers.
//!
//! ```text
//! LEAPFROG_SCALE=full cargo run --release -p leapfrog-bench --bin table2
//! ```

use leapfrog::{Checker, Options, Outcome};
use leapfrog_bench::alloc_track::{human_bytes, PeakAlloc};
use leapfrog_bench::rows::{
    rows_to_json, run_external_filtering, run_relational_verification, run_row,
    run_translation_validation, standard_benchmarks, RowResult,
};
use leapfrog_suite::utility::sloppy_strict;
use leapfrog_suite::Scale;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn main() {
    let scale = Scale::from_env();
    let options = Options::default();
    println!("Leapfrog-rs — Table 2 reproduction (scale: {scale:?})");
    println!(
        "{:<26} {:>6} {:>9} {:>7} {:>12} {:>10} {:>8} {:>6} {:>9}",
        "Name", "States", "Branched", "Total", "Runtime", "Memory", "Verified", "|R|", "Queries"
    );

    let mut all_within_5s = true;
    let mut measured: Vec<(RowResult, Option<usize>)> = Vec::new();
    let mut print_row = |row: RowResult, mem: usize, out: &mut Vec<(RowResult, Option<usize>)>| {
        println!(
            "{:<26} {:>6} {:>9} {:>7} {:>12} {:>10} {:>8} {:>6} {:>9}",
            row.name,
            row.metrics.states,
            row.metrics.branched_bits,
            row.metrics.total_bits,
            format!("{:.2?}", row.runtime),
            human_bytes(mem),
            if row.verified { "yes" } else { "NO" },
            row.relation_size,
            row.queries,
        );
        if row.queries_within_5s < 0.99 {
            all_within_5s = false;
        }
        out.push((row, Some(mem)));
    };

    // Utility rows 1–4 and applicability rows, in Table 2 order.
    let benches = standard_benchmarks(scale);
    let (utility, applicability) = benches.split_at(4);
    for bench in utility {
        ALLOC.reset();
        let row = run_row(bench, options);
        print_row(row, ALLOC.peak_bytes(), &mut measured);
    }
    // Rows 5–6: the relational case studies.
    ALLOC.reset();
    let row = run_relational_verification(options);
    print_row(row, ALLOC.peak_bytes(), &mut measured);
    ALLOC.reset();
    let row = run_external_filtering(options);
    print_row(row, ALLOC.peak_bytes(), &mut measured);
    // Applicability self-comparisons.
    for bench in applicability {
        ALLOC.reset();
        let row = run_row(bench, options);
        print_row(row, ALLOC.peak_bytes(), &mut measured);
    }
    // Translation validation.
    ALLOC.reset();
    let row = run_translation_validation(scale, options);
    print_row(row, ALLOC.peak_bytes(), &mut measured);

    println!();
    println!(
        "SMT latency: all case studies {} the paper's '99% of queries ≤ 5 s' bound",
        if all_within_5s { "meet" } else { "MISS" }
    );

    // §7.1 sanity check: inequivalent parsers must fail cleanly at Close,
    // and since the witness engine landed, the refutation must carry a
    // confirmed counterexample packet.
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    // Reach the Close step, as the paper describes.
    let opts = Options {
        early_stop: false,
        ..Options::default()
    };
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, opts);
    let witness_confirmed = match checker.run() {
        Outcome::NotEquivalent(refutation) => match refutation.witness() {
            Some(w) => {
                println!(
                    "Sanity check: sloppy vs strict NOT equivalent; {}-bit witness \
                     packet confirmed by explicit replay",
                    w.packet.len()
                );
                true
            }
            None => {
                println!("Sanity check: refuted, but the witness was NOT confirmed");
                false
            }
        },
        other => {
            println!("Sanity check FAILED: expected NotEquivalent, got {other:?}");
            false
        }
    };

    // Machine-readable output, so the performance trajectory is recorded.
    let json = rows_to_json(&measured, witness_confirmed);
    let path = "BENCH_table2.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path} ({} rows)", measured.len()),
        Err(e) => println!("Could not write {path}: {e}"),
    }
}
