//! Regenerates Table 2 of the paper: every case-study row with States /
//! Branched bits / Total bits / Runtime / Memory, plus the §7.3 SMT
//! latency summary, the §7.1 sanity check on inequivalent parsers, and —
//! since the guard-indexed parallel pipeline landed — the per-row thread
//! count, blast-cache hit rate, guard-index hit rate and speedup versus a
//! single-threaded run of the same row.
//!
//! Since the persistent-engine redesign the whole table is served by ONE
//! long-lived `leapfrog::Engine`: every row runs through it twice, and
//! the emitted JSON carries warm-vs-cold columns (`warm_speedup`,
//! `sessions_reused`, `sum_cache_hits`, `entailment_memo_hits`) showing
//! cross-request reuse even on one CPU.
//!
//! Since the trust root landed, every row's certificate is additionally
//! re-discharged through the independent `leapfrog-certcheck` checker
//! (its own WP transformer and DPLL loop — no engine code), with the
//! re-validation wall-clock recorded per row as `certcheck_secs` in
//! `BENCH_table2.json`; a rejection fails the run.
//!
//! ```text
//! LEAPFROG_SCALE=full cargo run --release -p leapfrog-bench --bin table2
//! ```
//!
//! Every run appends one snapshot line (commit, timestamp, scale, cores,
//! per-row runtimes, registry counters) to `BENCH_history.jsonl` — the
//! persisted perf trajectory. On multi-core hosts each row additionally
//! records its cold wall-clock at 1 and at 4 engine worker threads
//! (`cold_t1_secs` / `cold_t4_secs`, the intra-query parallel axis), so
//! both parallelism dimensions trend: intra-query here, inter-query in
//! `fleet_bench`'s snapshots. Tracing is on by default so the emitted
//! rows carry a per-phase time breakdown (`LEAPFROG_TRACE=0` disables).
//!
//! Flags / environment:
//! * `--smoke` — force the small scale and exit nonzero if any emitted
//!   row is missing the speedup / cache-hit-rate / thread-count /
//!   cegar-rounds / blocks-validated / session-rebuilds / warm-reuse /
//!   phase-breakdown fields, if no warm reuse was observed at all, if
//!   `warm_speedup` lands below 1.0 on *every* row (a warm re-run losing
//!   everywhere means engine reuse regressed), if the witness corpus
//!   regressed, if a redirect_case mutant is not refuted with a confirmed
//!   witness, or if the run regresses against the rolling history
//!   baseline (median of the last 5 comparable snapshots): total runtime
//!   above 2× the baseline, or the best warm speedup collapsing below
//!   1.0 when the baseline held it at ≥ 1.0 (CI runs this).
//! * `--batch` — additionally pre-run the whole standard table through
//!   `Engine::check_batch` (the serving API) on the table-wide engine;
//!   any batched verdict disagreeing with the per-row expectation fails
//!   (CI runs `--smoke --batch`). The 1-vs-4-thread cold-engine
//!   `batch_parallel_speedup` measurement itself no longer needs the
//!   flag: it runs whenever the host has ≥ 2 cores, and the JSON records
//!   `cores` so a `null` ratio is readable as "single-core host".
//! * `LEAPFROG_BENCH_HISTORY=path` — where the trajectory lives (default
//!   `BENCH_history.jsonl`).
//! * `LEAPFROG_SKIP_BASELINE=1` — skip the `threads = 1` baseline re-runs
//!   (speedup reported as `null`); useful for very large scales.
//! * `LEAPFROG_WITNESS_CORPUS=path` — where the witness regression corpus
//!   lives (default `WITNESS_CORPUS.txt`).
//! * `LEAPFROG_SESSION_GC=ratio|0`, `LEAPFROG_SESSION_GC_FLOOR=n` — the
//!   guard sessions' clause-budget GC (results are identical, only
//!   memory/time change).

use leapfrog::json::{self, Value};
use leapfrog::{Engine, EngineConfig, Outcome, QuerySpec};
use leapfrog_bench::alloc_track::{human_bytes, PeakAlloc};
use leapfrog_bench::rows::{
    rows_to_json, run_external_filtering_in, run_relational_verification_in, run_row_in,
    run_translation_validation_in, standard_benchmarks, translation_validation_pair, RowResult,
};
use leapfrog_suite::corpus::WitnessCorpus;
use leapfrog_suite::differential::check_cross_validate_and_record_in;
use leapfrog_suite::mutants::mutant_benchmarks;
use leapfrog_suite::utility::sloppy_strict;
use leapfrog_suite::{Benchmark, Scale};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

/// The sanity-check pair is a named corpus entry so its witnesses are
/// re-exercised on every run.
const SANITY_PAIR: &str = "Sanity check (sloppy vs strict)";

/// Re-discharges a measured row's certificate through the independent
/// `leapfrog-certcheck` trust root — its own reachable-pair sweep, WP
/// transformer and DPLL loop, sharing no solver code with the engine —
/// and records the re-validation wall-clock on the row. Every standard
/// table row is expected equivalent, so a missing certificate or a
/// trust-root rejection is a run failure.
fn recheck_certificate(
    row: &mut RowResult,
    left: &leapfrog_p4a::ast::Automaton,
    right: &leapfrog_p4a::ast::Automaton,
    failures: &mut Vec<String>,
) {
    let Some(cert_json) = row.certificate.clone() else {
        failures.push(format!(
            "\"{}\" verified without emitting a certificate to re-check",
            row.name
        ));
        return;
    };
    let sum = leapfrog_p4a::sum::sum(left, right);
    let start = std::time::Instant::now();
    match leapfrog_certcheck::check_json(&sum.automaton, &cert_json) {
        Ok(()) => row.certcheck_secs = Some(start.elapsed().as_secs_f64()),
        Err(e) => failures.push(format!(
            "trust root rejected the \"{}\" certificate [{}]: {e}",
            row.name,
            e.class()
        )),
    }
}

/// Runs a row runner against the persistent engine. Unless disabled, a
/// `threads = 1` *cold* baseline (its own transient engine) runs first,
/// reporting the wall-time speedup; on a multi-core host a `threads = 4`
/// cold run follows, so every row records both points of the intra-query
/// parallel axis (`cold_t1` / `cold_t4` — ROADMAP item 3's trend). Then
/// the row is measured through the persistent engine and immediately
/// re-run warm, filling the warm-reuse columns. The allocator peak is
/// reset after the baselines and read back *before* the warm pass, so
/// the returned peak covers the measured run only — on top of the
/// engine-resident floor (warm sessions, memos and caches from earlier
/// rows stay live; the Memory column is the serving footprint, not an
/// isolated per-row cost).
fn measure(
    engine: &mut Engine,
    run: &dyn Fn(&mut Engine) -> RowResult,
    baseline: bool,
    cores: usize,
) -> (RowResult, usize) {
    let intra = baseline && cores >= 2;
    let single = if baseline && (intra || engine.config().effective_threads() > 1) {
        let mut cold = Engine::new(engine.config().clone().threads(1));
        Some(run(&mut cold).runtime)
    } else {
        None
    };
    let quad = if intra {
        let mut cold = Engine::new(engine.config().clone().threads(4));
        Some(run(&mut cold).runtime)
    } else {
        None
    };
    ALLOC.reset();
    let mut row = run(engine);
    let peak = ALLOC.peak_bytes();
    row.speedup = match single {
        Some(single) => Some(single.as_secs_f64() / row.runtime.as_secs_f64().max(1e-9)),
        None if engine.config().effective_threads() == 1 => Some(1.0),
        None => None,
    };
    row.cold_t1 = single;
    row.cold_t4 = quad;
    let warm = run(engine);
    row.absorb_warm(&warm);
    (row, peak)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let batch_mode = std::env::args().any(|a| a == "--batch");
    let scale = if smoke {
        Scale::Small
    } else {
        Scale::from_env()
    };
    let baseline = std::env::var("LEAPFROG_SKIP_BASELINE").as_deref() != Ok("1");
    // Tracing is on by default for the table run — the per-phase
    // breakdown is part of the recorded trajectory. `LEAPFROG_TRACE=0`
    // still turns it off (engine construction applies the env).
    if std::env::var("LEAPFROG_TRACE").is_err() {
        leapfrog_obs::set_trace_enabled(true);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut engine = Engine::new(EngineConfig::from_env());
    let corpus_path = std::env::var("LEAPFROG_WITNESS_CORPUS")
        .unwrap_or_else(|_| "WITNESS_CORPUS.txt".to_string());
    let mut failures: Vec<String> = Vec::new();
    // An unreadable corpus is a failure, and the file is left untouched —
    // overwriting it with this run's entries would destroy every recorded
    // regression packet.
    let mut corpus_writable = true;
    let mut corpus = match WitnessCorpus::load(&corpus_path) {
        Ok(c) => c,
        Err(e) => {
            failures.push(format!("witness corpus unreadable: {e}"));
            corpus_writable = false;
            WitnessCorpus::new()
        }
    };

    println!(
        "Leapfrog-rs — Table 2 reproduction (scale: {scale:?}, threads: {}, baseline: {}, engine: persistent{})",
        engine.config().effective_threads(),
        if baseline { "on" } else { "off" },
        if batch_mode { ", batch pre-pass" } else { "" },
    );

    // Batch mode: the serving API first. The whole standard table runs
    // through `check_batch` on dedicated cold engines at 1 and 4 worker
    // threads — the cross-query parallel axis, recorded as
    // `batch_parallel_speedup` (wall-clock t1/t4; ~1.0 on a single-core
    // container, a real win on multi-core CI runners). Then the same rows
    // go through the table-wide persistent engine, so the per-row
    // measurements afterwards run warm against the batch's state.
    let mut batch_parallel_speedup = None;
    let batch_benches = standard_benchmarks(scale);
    let batch_specs: Vec<QuerySpec> = batch_benches
        .iter()
        .map(|b| QuerySpec::new(b.name, &b.left, b.left_start, &b.right, b.right_start))
        .collect();
    // The parallel-axis measurement runs whenever it is meaningful: with
    // at least 2 cores the 1-vs-4-thread ratio is real even without
    // `--batch`, so local multi-core runs record it rather than emitting
    // `null` (single-core hosts report it as not measurable instead).
    if batch_mode || cores >= 2 {
        let mut time_batch = |threads: usize| {
            let mut cold = Engine::new(EngineConfig::from_env().threads(threads));
            let start = std::time::Instant::now();
            let outcomes = cold.check_batch(&batch_specs);
            for (bench, outcome) in batch_benches.iter().zip(&outcomes) {
                if outcome.is_equivalent() != bench.expect_equivalent {
                    failures.push(format!(
                        "batch verdict mismatch for \"{}\" at {threads} thread(s): \
                         got {outcome:?}",
                        bench.name
                    ));
                }
            }
            start.elapsed()
        };
        let wall_1 = time_batch(1);
        let wall_4 = time_batch(4);
        batch_parallel_speedup = Some(wall_1.as_secs_f64() / wall_4.as_secs_f64().max(1e-9));
        println!(
            "Batch parallel axis: {} rows via check_batch — {:.2?} at 1 thread, \
             {:.2?} at 4 threads ({:.2}x, {cores} core(s))",
            batch_specs.len(),
            wall_1,
            wall_4,
            batch_parallel_speedup.unwrap(),
        );
    } else {
        println!("Batch parallel axis: not measurable on {cores} core(s)");
    }
    if batch_mode {
        let benches = &batch_benches;
        let specs = &batch_specs;
        let outcomes = engine.check_batch(specs);
        for (bench, outcome) in benches.iter().zip(&outcomes) {
            if outcome.is_equivalent() != bench.expect_equivalent {
                failures.push(format!(
                    "batch verdict mismatch for \"{}\": got {outcome:?}",
                    bench.name
                ));
            }
        }
        let stats = engine.last_run_stats();
        println!(
            "Batch pre-pass: {} queries through check_batch (batch workers: {}, \
             entailment checks: {}, wall: {:.2?})",
            outcomes.len(),
            engine.config().effective_threads(),
            stats.entailment_checks,
            stats.wall_time,
        );
    }

    println!(
        "{:<26} {:>6} {:>9} {:>7} {:>12} {:>10} {:>8} {:>6} {:>9} {:>8} {:>7} {:>7} {:>8} {:>10}",
        "Name",
        "States",
        "Branched",
        "Total",
        "Runtime",
        "Memory",
        "Verified",
        "|R|",
        "Queries",
        "Speedup",
        "Cache%",
        "Index%",
        "Warm",
        "Recheck"
    );

    let mut all_within_5s = true;
    let mut measured: Vec<(RowResult, Option<usize>)> = Vec::new();
    let mut print_row = |row: RowResult, mem: usize, out: &mut Vec<(RowResult, Option<usize>)>| {
        println!(
            "{:<26} {:>6} {:>9} {:>7} {:>12} {:>10} {:>8} {:>6} {:>9} {:>8} {:>7} {:>7} {:>8} {:>10}",
            row.name,
            row.metrics.states,
            row.metrics.branched_bits,
            row.metrics.total_bits,
            format!("{:.2?}", row.runtime),
            human_bytes(mem),
            if row.verified { "yes" } else { "NO" },
            row.relation_size,
            row.queries,
            row.speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}%", 100.0 * row.blast_cache_hit_rate),
            format!("{:.0}%", 100.0 * row.index_hit_rate),
            row.warm_speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
            row.certcheck_secs
                .map(|s| format!("{:.2?}", std::time::Duration::from_secs_f64(s)))
                .unwrap_or_else(|| "-".into()),
        );
        if row.queries_within_5s < 0.99 {
            all_within_5s = false;
        }
        out.push((row, Some(mem)));
    };

    // Every named pair row replays its recorded corpus packets first (a
    // packet distinguishing an expected-equivalent pair, or a refuted
    // pair none of whose packets still distinguish it, is a regression)
    // and feeds any confirmed refutation witness back into the corpus —
    // applicability rows included, not just the sanity pair.
    let exercise_prior = |bench: &Benchmark, corpus: &WitnessCorpus, failures: &mut Vec<String>| {
        let prior = corpus.exercise(
            bench.name,
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
        );
        if bench.expect_equivalent && prior.distinguishing > 0 {
            failures.push(format!(
                "witness corpus regression: {} recorded packet(s) distinguish \
                 \"{}\", which the suite expects equivalent",
                prior.distinguishing, bench.name
            ));
        }
        if !bench.expect_equivalent && prior.replayed > 0 && prior.distinguishing == 0 {
            failures.push(format!(
                "witness corpus regression: no recorded packet distinguishes \
                 \"{}\" anymore",
                bench.name
            ));
        }
    };

    // Utility rows 1–4 and applicability rows, in Table 2 order.
    let benches = standard_benchmarks(scale);
    let (utility, applicability) = benches.split_at(4);
    for bench in utility {
        exercise_prior(bench, &corpus, &mut failures);
        let (mut row, mem) = measure(
            &mut engine,
            &|e: &mut Engine| run_row_in(e, bench),
            baseline,
            cores,
        );
        if let Some(w) = &row.witness {
            corpus.record(&row.name, w);
        }
        recheck_certificate(&mut row, &bench.left, &bench.right, &mut failures);
        print_row(row, mem, &mut measured);
    }
    // Rows 5–6: the relational case studies. Both are posed over the
    // sloppy/strict pair, so the trust root re-checks their certificates
    // against the same sum automaton.
    let (rel_left, rel_right) = sloppy_strict::sloppy_strict_parsers();
    let (mut row, mem) = measure(
        &mut engine,
        &run_relational_verification_in,
        baseline,
        cores,
    );
    recheck_certificate(&mut row, &rel_left, &rel_right, &mut failures);
    print_row(row, mem, &mut measured);
    let (mut row, mem) = measure(&mut engine, &run_external_filtering_in, baseline, cores);
    recheck_certificate(&mut row, &rel_left, &rel_right, &mut failures);
    print_row(row, mem, &mut measured);
    // Applicability self-comparisons.
    for bench in applicability {
        exercise_prior(bench, &corpus, &mut failures);
        let (mut row, mem) = measure(
            &mut engine,
            &|e: &mut Engine| run_row_in(e, bench),
            baseline,
            cores,
        );
        if let Some(w) = &row.witness {
            corpus.record(&row.name, w);
        }
        recheck_certificate(&mut row, &bench.left, &bench.right, &mut failures);
        print_row(row, mem, &mut measured);
    }
    // Translation validation. The pair is rebuilt deterministically so
    // the trust root can restate the sum the certificate talks about.
    let (mut row, mem) = measure(
        &mut engine,
        &|e: &mut Engine| run_translation_validation_in(e, scale),
        baseline,
        cores,
    );
    let (edge, _, back, _) = translation_validation_pair(scale);
    recheck_certificate(&mut row, &edge, &back, &mut failures);
    print_row(row, mem, &mut measured);

    println!();
    println!(
        "SMT latency: all case studies {} the paper's '99% of queries ≤ 5 s' bound",
        if all_within_5s { "meet" } else { "MISS" }
    );
    let estats = engine.stats();
    println!(
        "Engine reuse: {} checks, {} sums interned ({} hits), {} warm sessions attached, \
         {} memoized verdicts replayed",
        estats.checks,
        estats.pairs_interned,
        estats.sum_cache_hits,
        estats.sessions_reused,
        estats.entailment_memo_hits,
    );
    let rechecked = measured
        .iter()
        .filter(|(r, _)| r.certcheck_secs.is_some())
        .count();
    let recheck_total: f64 = measured.iter().filter_map(|(r, _)| r.certcheck_secs).sum();
    println!(
        "Trust root: {rechecked}/{} certificates independently re-discharged by \
         leapfrog-certcheck ({:.2?} total)",
        measured.len(),
        std::time::Duration::from_secs_f64(recheck_total),
    );

    // §7.1 sanity check: inequivalent parsers must fail cleanly at Close,
    // and since the witness engine landed, the refutation must carry a
    // confirmed counterexample packet. The witness feeds the regression
    // corpus, whose prior entries are re-exercised first. Early stopping
    // is off so the Close step is genuinely reached — a distinct query
    // shape, so it runs on its own engine.
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let prior = corpus.exercise(SANITY_PAIR, &sloppy, ql, &strict, qr);
    if prior.replayed > 0 {
        println!(
            "Witness corpus: {}/{} recorded packet(s) still distinguish sloppy vs strict",
            prior.distinguishing, prior.replayed
        );
        if prior.distinguishing == 0 {
            failures.push(
                "witness corpus regression: no recorded packet distinguishes the \
                 sanity-check pair anymore"
                    .into(),
            );
        }
    }
    let mut close_engine = EngineConfig::from_env().early_stop(false).build();
    let witness_confirmed = match close_engine.check(&sloppy, ql, &strict, qr) {
        Outcome::NotEquivalent(refutation) => match refutation.witness() {
            Some(w) => {
                println!(
                    "Sanity check: sloppy vs strict NOT equivalent; {}-bit witness \
                     packet confirmed by explicit replay",
                    w.packet.len()
                );
                if corpus.record(SANITY_PAIR, w) {
                    println!("Witness corpus: recorded the minimized packet");
                }
                true
            }
            None => {
                println!("Sanity check: refuted, but the witness was NOT confirmed");
                false
            }
        },
        other => {
            println!("Sanity check FAILED: expected NotEquivalent, got {other:?}");
            false
        }
    };
    if !witness_confirmed {
        failures.push("sanity-check witness not confirmed".into());
    }

    // The mutated-parser negative suite: each redirect_case mutant (of the
    // speculative-loop pair and the applicability parsers) must be refuted
    // with a confirmed witness; the witnesses join the corpus and prior
    // entries replay through the differential harness. The mutants run
    // through the persistent engine too.
    let mutants = mutant_benchmarks();
    println!();
    println!("Mutated-parser negative suite ({} mutants):", mutants.len());
    for m in &mutants {
        match check_cross_validate_and_record_in(
            &mut engine,
            &m.left,
            m.left_start,
            &m.right,
            m.right_start,
            m.name,
            &mut corpus,
        ) {
            Ok(Outcome::NotEquivalent(_)) => {
                println!(
                    "  {}: refuted; {} corpus packet(s)",
                    m.name,
                    corpus.entries(m.name).len()
                );
            }
            Ok(other) => failures.push(format!(
                "mutant {}: expected NotEquivalent, got {other:?}",
                m.name
            )),
            Err(e) => failures.push(format!("mutant {}: {e}", m.name)),
        }
    }
    if corpus_writable {
        match corpus.save(&corpus_path) {
            Ok(()) => println!(
                "Witness corpus: {} entr(ies) at {corpus_path}",
                corpus.len()
            ),
            Err(e) => println!("Witness corpus: could not save {corpus_path}: {e}"),
        }
    } else {
        println!("Witness corpus: NOT saved (existing {corpus_path} is unreadable)");
    }

    // Machine-readable output, so the performance trajectory is recorded.
    let json = rows_to_json(&measured, witness_confirmed, batch_parallel_speedup, cores);
    let path = "BENCH_table2.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("Wrote {path} ({} rows)", measured.len()),
        Err(e) => println!("Could not write {path}: {e}"),
    }

    // The persisted trajectory: one snapshot line per run, appended to a
    // JSONL history. The smoke gate compares this run against the rolling
    // baseline (median of the last 5 comparable snapshots) *before* the
    // append, so a regressed run still records itself for forensics but
    // cannot silently become its own baseline.
    let history_path = std::env::var("LEAPFROG_BENCH_HISTORY")
        .unwrap_or_else(|_| "BENCH_history.jsonl".to_string());
    let current =
        HistorySnapshot::capture(scale, cores, batch_mode, &measured, batch_parallel_speedup);
    let prior = load_history(&history_path, &format!("{scale:?}"), batch_mode);
    match append_history(&history_path, &current) {
        Ok(()) => println!(
            "Appended snapshot to {history_path} ({} comparable prior run(s))",
            prior.len()
        ),
        Err(e) => println!("Could not append {history_path}: {e}"),
    }
    if smoke {
        gate_against_baseline(&current, &prior, &mut failures);
    }

    // Smoke validation: every row must report the pipeline fields,
    // including the warm-reuse columns.
    for key in [
        "\"speedup\"",
        "\"blast_cache_hit_rate\"",
        "\"threads\"",
        "\"index_hit_rate\"",
        "\"cegar_rounds\"",
        "\"blocks_validated\"",
        "\"blocks_considered\"",
        "\"session_rebuilds\"",
        "\"peak_live_clauses\"",
        "\"sat_conflicts\"",
        "\"sat_propagations\"",
        "\"portfolio_lanes\"",
        "\"portfolio_win_histogram\"",
        "\"cold_t1_secs\"",
        "\"cold_t4_secs\"",
        "\"warm_speedup\"",
        "\"sessions_reused\"",
        "\"sum_cache_hits\"",
        "\"entailment_memo_hits\"",
        "\"certcheck_secs\"",
    ] {
        let have = json.matches(key).count();
        if have != measured.len() {
            failures.push(format!(
                "{key} present in {have}/{} emitted rows",
                measured.len()
            ));
        }
    }
    // The intra-query parallel axis must be *measured* (not just null)
    // wherever the host can: a multi-core machine with the baseline runs
    // enabled has no excuse for a missing cold_t1/cold_t4 point.
    if cores >= 2 && baseline {
        let unmeasured = measured
            .iter()
            .filter(|(r, _)| r.cold_t1.is_none() || r.cold_t4.is_none())
            .count();
        if unmeasured > 0 {
            failures.push(format!(
                "{unmeasured}/{} rows are missing the cold_t1/cold_t4 intra-query \
                 measurements despite {cores} core(s)",
                measured.len()
            ));
        }
    }
    // Engine warmth must be *observable*: across the whole table, the
    // warm re-runs must have attached sessions, hit the sum intern table
    // and replayed memoized verdicts somewhere.
    let total_reused: u64 = measured.iter().map(|(r, _)| r.sessions_reused).sum();
    let total_sum_hits: u64 = measured.iter().map(|(r, _)| r.sum_cache_hits).sum();
    let total_memo: u64 = measured.iter().map(|(r, _)| r.entailment_memo_hits).sum();
    if total_reused == 0 || total_sum_hits == 0 || total_memo == 0 {
        failures.push(format!(
            "no engine warm reuse observed (sessions_reused={total_reused}, \
             sum_cache_hits={total_sum_hits}, entailment_memo_hits={total_memo})"
        ));
    }
    // A warm re-run losing to its own cold run on EVERY row means engine
    // reuse regressed outright — field presence alone would not catch it.
    // Only meaningful outside batch mode: the batch pre-pass warms the
    // table-wide engine, so batch-mode "cold" rows are already memo-served
    // and the warm ratio is pure timing noise.
    if !batch_mode {
        let best_warm = measured
            .iter()
            .filter_map(|(r, _)| r.warm_speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if !measured.is_empty() && best_warm < 1.0 {
            failures.push(format!(
                "warm_speedup < 1.0 on every row (best {best_warm:.3}): no warm win anywhere"
            ));
        }
    }
    // The parallel-axis measurement must land in the JSON whenever the
    // host can measure it; a single-core host legitimately reports null.
    if batch_parallel_speedup.is_none() {
        if batch_mode || cores >= 2 {
            failures.push(format!(
                "batch_parallel_speedup missing despite {cores} core(s)"
            ));
        } else {
            println!(
                "batch_parallel_speedup: not measurable on a single-core host \
                 (cores={cores}; recorded as null)"
            );
        }
    }
    // Tracing was on (unless explicitly disabled), so every emitted row
    // must carry a nonempty phase breakdown.
    if std::env::var("LEAPFROG_TRACE").as_deref() != Ok("0") {
        let empty = measured.iter().filter(|(r, _)| r.phases.is_empty()).count();
        if empty > 0 {
            failures.push(format!(
                "{empty}/{} rows have an empty phase breakdown despite tracing",
                measured.len()
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAILURE: {f}");
        }
        if smoke {
            std::process::exit(1);
        }
    }
}

/// One row's trajectory point: name, runtime, warm speedup and the two
/// cold intra-query-axis wall-clocks, in seconds.
type RowPoint = (String, f64, Option<f64>, Option<f64>, Option<f64>);

/// One run's entry in the persisted perf trajectory (`BENCH_history.jsonl`).
struct HistorySnapshot {
    commit: String,
    unix_time: u64,
    scale: String,
    cores: usize,
    batch_mode: bool,
    total_runtime_secs: f64,
    best_warm_speedup: Option<f64>,
    batch_parallel_speedup: Option<f64>,
    rows: Vec<RowPoint>,
}

/// A prior snapshot reduced to the two gated quantities.
struct PriorRun {
    total_runtime_secs: f64,
    best_warm_speedup: Option<f64>,
}

impl HistorySnapshot {
    fn capture(
        scale: Scale,
        cores: usize,
        batch_mode: bool,
        measured: &[(RowResult, Option<usize>)],
        batch_parallel_speedup: Option<f64>,
    ) -> HistorySnapshot {
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        HistorySnapshot {
            commit,
            unix_time,
            scale: format!("{scale:?}"),
            cores,
            batch_mode,
            total_runtime_secs: measured.iter().map(|(r, _)| r.runtime.as_secs_f64()).sum(),
            best_warm_speedup: measured
                .iter()
                .filter_map(|(r, _)| r.warm_speedup)
                .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s)))),
            batch_parallel_speedup,
            rows: measured
                .iter()
                .map(|(r, _)| {
                    (
                        r.name.clone(),
                        r.runtime.as_secs_f64(),
                        r.warm_speedup,
                        r.cold_t1.map(|d| d.as_secs_f64()),
                        r.cold_t4.map(|d| d.as_secs_f64()),
                    )
                })
                .collect(),
        }
    }

    /// Renders the snapshot as one JSON line (flattened canonical JSON;
    /// strings escape embedded newlines, so the line never breaks).
    fn render_line(&self) -> String {
        let opt = |v: Option<f64>| v.map(Value::Num).unwrap_or(Value::Null);
        let snap = leapfrog_obs::global().snapshot();
        let counter = |n: &str| json::num(snap.counters.get(n).copied().unwrap_or(0) as usize);
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|(name, secs, warm, cold_t1, cold_t4)| {
                json::obj(vec![
                    ("name", Value::Str(name.clone())),
                    ("runtime_secs", Value::Num(*secs)),
                    ("warm_speedup", opt(*warm)),
                    ("cold_t1_secs", opt(*cold_t1)),
                    ("cold_t4_secs", opt(*cold_t4)),
                ])
            })
            .collect();
        let v = json::obj(vec![
            ("commit", Value::Str(self.commit.clone())),
            ("unix_time", json::num(self.unix_time as usize)),
            ("scale", Value::Str(self.scale.clone())),
            ("cores", json::num(self.cores)),
            ("batch_mode", Value::Bool(self.batch_mode)),
            ("total_runtime_secs", Value::Num(self.total_runtime_secs)),
            ("best_warm_speedup", opt(self.best_warm_speedup)),
            ("batch_parallel_speedup", opt(self.batch_parallel_speedup)),
            (
                "metrics",
                json::obj(vec![
                    ("checks", counter("leapfrog_checks_total")),
                    (
                        "entailment_checks",
                        counter("leapfrog_entailment_checks_total"),
                    ),
                    (
                        "entailment_memo_hits",
                        counter("leapfrog_entailment_memo_hits_total"),
                    ),
                    ("smt_queries", counter("leapfrog_smt_queries_total")),
                    ("cegar_rounds", counter("leapfrog_cegar_rounds_total")),
                ]),
            ),
            ("rows", Value::Arr(rows)),
        ]);
        v.render()
            .lines()
            .map(str::trim_start)
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Loads the prior snapshots comparable to this run (same scale and
/// batch-mode flag); malformed lines are skipped, a missing file is an
/// empty history.
fn load_history(path: &str, scale: &str, batch_mode: bool) -> Vec<PriorRun> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let num = |v: &Value, key: &str| match json::get(v, key) {
        Ok(Value::Num(n)) => Some(*n),
        _ => None,
    };
    text.lines()
        .filter_map(|line| json::parse(line).ok())
        .filter(|v| {
            json::get(v, "scale")
                .ok()
                .and_then(|s| json::as_str(s).ok())
                == Some(scale)
                && json::get(v, "batch_mode")
                    .ok()
                    .and_then(|b| json::as_bool(b).ok())
                    == Some(batch_mode)
        })
        .filter_map(|v| {
            Some(PriorRun {
                total_runtime_secs: num(&v, "total_runtime_secs")?,
                best_warm_speedup: num(&v, "best_warm_speedup"),
            })
        })
        .collect()
}

fn append_history(path: &str, snapshot: &HistorySnapshot) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", snapshot.render_line())
}

fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(values[values.len() / 2])
}

/// The smoke gate against the rolling baseline: the median of the last
/// (up to) 5 comparable snapshots. A run slower than 2× the baseline
/// total runtime fails; a warm-speedup collapse below 1.0 fails when the
/// baseline reliably sat at or above 1.0. With no comparable history the
/// gate is vacuous — the first run seeds the baseline.
fn gate_against_baseline(
    current: &HistorySnapshot,
    prior: &[PriorRun],
    failures: &mut Vec<String>,
) {
    let window = &prior[prior.len().saturating_sub(5)..];
    if window.is_empty() {
        println!("Baseline gate: no comparable history yet; this run seeds it");
        return;
    }
    if let Some(base) = median(window.iter().map(|p| p.total_runtime_secs).collect()) {
        println!(
            "Baseline gate: total runtime {:.3}s vs rolling median {:.3}s over {} run(s)",
            current.total_runtime_secs,
            base,
            window.len()
        );
        if current.total_runtime_secs > 2.0 * base {
            failures.push(format!(
                "perf regression: total runtime {:.3}s is more than 2x the rolling \
                 baseline {:.3}s",
                current.total_runtime_secs, base
            ));
        }
    }
    let base_warm = median(window.iter().filter_map(|p| p.best_warm_speedup).collect());
    if let (Some(base), Some(cur)) = (base_warm, current.best_warm_speedup) {
        if base >= 1.0 && cur < 1.0 {
            failures.push(format!(
                "warm-speedup regression: best warm speedup {cur:.3} fell below 1.0 \
                 (rolling baseline {base:.3})"
            ));
        }
    }
}
