//! The §7.3 ablation: re-runs selected case studies with leaps and/or
//! reachability pruning disabled, reproducing the paper's observation that
//! the small State Rearrangement study blows up without leaps (30 s →
//! 42 min in Coq) and does not finish without reachability pruning.
//!
//! Each configuration gets its own engine built through the typed
//! `EngineConfig` builder — the ablation knobs are per-query *semantic*
//! settings, so sharing warm state across them would be meaningless.
//!
//! ```text
//! cargo run --release -p leapfrog-bench --bin ablation
//! ```

use std::time::Instant;

use leapfrog::EngineConfig;
use leapfrog_bench::alloc_track::{human_bytes, PeakAlloc};
use leapfrog_suite::utility::{mpls, state_rearrangement};
use leapfrog_suite::{applicability, Benchmark, Scale};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn run(bench: &Benchmark, leaps: bool, reach_pruning: bool, budget: u64) {
    let mut engine = EngineConfig::from_env()
        .leaps(leaps)
        .reach_pruning(reach_pruning)
        .max_iterations(Some(budget))
        .build();
    ALLOC.reset();
    let start = Instant::now();
    let outcome = engine.check(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
    );
    let stats = engine.last_run_stats();
    println!(
        "{:<22} leaps={:<5} pruning={:<5} -> {:<10} {:>10} iters={:<6} scope={:<6} queries={:<6} mem={}",
        bench.name,
        leaps,
        reach_pruning,
        match outcome {
            leapfrog::Outcome::Equivalent(_) => "verified",
            leapfrog::Outcome::NotEquivalent(_) => "refuted",
            leapfrog::Outcome::Aborted(_) => "aborted",
        },
        format!("{:.2?}", start.elapsed()),
        stats.iterations,
        stats.scope_pairs,
        stats.queries.queries,
        human_bytes(ALLOC.peak_bytes()),
    );
}

/// The SAT-core ablation: re-runs the solver-heavy applicability rows with
/// LBD-tiered learnt-clause management disabled (activity-only deletion,
/// the pre-rewrite policy). Verdicts and witnesses are identical either
/// way — only the learnt-clause retention policy changes — so the section
/// hard-fails on any verdict or query-count divergence.
fn run_lbd(bench: &Benchmark, lbd: bool) -> (leapfrog::Outcome, u64) {
    let mut engine = EngineConfig::from_env().sat_lbd(lbd).build();
    ALLOC.reset();
    let start = Instant::now();
    let outcome = engine.check(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
    );
    let stats = engine.last_run_stats();
    println!(
        "{:<22} lbd={:<5} -> {:<10} {:>10} conflicts={:<8} learnt_deleted={:<8} mem={}",
        bench.name,
        lbd,
        match outcome {
            leapfrog::Outcome::Equivalent(_) => "verified",
            leapfrog::Outcome::NotEquivalent(_) => "refuted",
            leapfrog::Outcome::Aborted(_) => "aborted",
        },
        format!("{:.2?}", start.elapsed()),
        stats.queries.sat.conflicts,
        stats.queries.sat.deleted_clauses,
        human_bytes(ALLOC.peak_bytes()),
    );
    (outcome, stats.queries.queries)
}

/// The portfolio ablation: re-runs the solver-heavy applicability rows
/// with SAT portfolio racing at the given lane count (`0` = the
/// single-solver baseline), with the racing floor forced to zero so every
/// entailment solve actually races. The canonical lane always completes
/// its own unperturbed search, so verdicts, witnesses *and* the query
/// trajectory must be identical at every lane count — the section
/// hard-fails on any divergence.
fn run_portfolio(bench: &Benchmark, lanes: usize) -> (leapfrog::Outcome, u64) {
    let mut engine = EngineConfig::from_env()
        .sat_portfolio(lanes)
        .sat_portfolio_min_clauses(0)
        .build();
    ALLOC.reset();
    let start = Instant::now();
    let outcome = engine.check(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
    );
    let stats = engine.last_run_stats();
    println!(
        "{:<22} lanes={:<2} -> {:<10} {:>10} races={:<6} solo={:<8} wins={:?} mem={}",
        bench.name,
        lanes,
        match outcome {
            leapfrog::Outcome::Equivalent(_) => "verified",
            leapfrog::Outcome::NotEquivalent(_) => "refuted",
            leapfrog::Outcome::Aborted(_) => "aborted",
        },
        format!("{:.2?}", start.elapsed()),
        stats.queries.portfolio.races,
        stats.queries.portfolio.solo,
        &stats.queries.portfolio.wins[..lanes.min(stats.queries.portfolio.wins.len())],
        human_bytes(ALLOC.peak_bytes()),
    );
    (outcome, stats.queries.queries)
}

fn main() {
    println!("Leapfrog-rs — §7.3 ablation (iteration budget caps runaway configurations)");
    let budget = 200_000;
    for bench in [
        state_rearrangement::state_rearrangement_benchmark(),
        mpls::mpls_benchmark(),
    ] {
        for (leaps, pruning) in [(true, true), (false, true), (true, false), (false, false)] {
            run(&bench, leaps, pruning, budget);
        }
        println!();
    }

    println!("SAT-core ablation (LBD two-tier learnt management vs activity-only)");
    for bench in applicability::all_benchmarks(Scale::from_env()) {
        let (on, on_queries) = run_lbd(&bench, true);
        let (off, off_queries) = run_lbd(&bench, false);
        assert_eq!(
            std::mem::discriminant(&on),
            std::mem::discriminant(&off),
            "{}: LBD toggle changed the verdict",
            bench.name
        );
        assert_eq!(
            on_queries, off_queries,
            "{}: LBD toggle changed the query trajectory",
            bench.name
        );
    }

    println!();
    println!("SAT portfolio ablation (single solver vs 2-lane racing)");
    for bench in applicability::all_benchmarks(Scale::from_env()) {
        let (off, off_queries) = run_portfolio(&bench, 0);
        let (racing, racing_queries) = run_portfolio(&bench, 2);
        assert_eq!(
            std::mem::discriminant(&off),
            std::mem::discriminant(&racing),
            "{}: the portfolio changed the verdict",
            bench.name
        );
        assert_eq!(
            off_queries, racing_queries,
            "{}: the portfolio changed the query trajectory",
            bench.name
        );
    }
}
