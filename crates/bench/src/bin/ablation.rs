//! The §7.3 ablation: re-runs selected case studies with leaps and/or
//! reachability pruning disabled, reproducing the paper's observation that
//! the small State Rearrangement study blows up without leaps (30 s →
//! 42 min in Coq) and does not finish without reachability pruning.
//!
//! Each configuration gets its own engine built through the typed
//! `EngineConfig` builder — the ablation knobs are per-query *semantic*
//! settings, so sharing warm state across them would be meaningless.
//!
//! ```text
//! cargo run --release -p leapfrog-bench --bin ablation
//! ```

use std::time::Instant;

use leapfrog::EngineConfig;
use leapfrog_bench::alloc_track::{human_bytes, PeakAlloc};
use leapfrog_suite::utility::{mpls, state_rearrangement};
use leapfrog_suite::Benchmark;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn run(bench: &Benchmark, leaps: bool, reach_pruning: bool, budget: u64) {
    let mut engine = EngineConfig::from_env()
        .leaps(leaps)
        .reach_pruning(reach_pruning)
        .max_iterations(Some(budget))
        .build();
    ALLOC.reset();
    let start = Instant::now();
    let outcome = engine.check(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
    );
    let stats = engine.last_run_stats();
    println!(
        "{:<22} leaps={:<5} pruning={:<5} -> {:<10} {:>10} iters={:<6} scope={:<6} queries={:<6} mem={}",
        bench.name,
        leaps,
        reach_pruning,
        match outcome {
            leapfrog::Outcome::Equivalent(_) => "verified",
            leapfrog::Outcome::NotEquivalent(_) => "refuted",
            leapfrog::Outcome::Aborted(_) => "aborted",
        },
        format!("{:.2?}", start.elapsed()),
        stats.iterations,
        stats.scope_pairs,
        stats.queries.queries,
        human_bytes(ALLOC.peak_bytes()),
    );
}

fn main() {
    println!("Leapfrog-rs — §7.3 ablation (iteration budget caps runaway configurations)");
    let budget = 200_000;
    for bench in [
        state_rearrangement::state_rearrangement_benchmark(),
        mpls::mpls_benchmark(),
    ] {
        for (leaps, pruning) in [(true, true), (false, true), (true, false), (false, false)] {
            run(&bench, leaps, pruning, budget);
        }
        println!();
    }
}
