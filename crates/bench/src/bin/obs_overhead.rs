//! `obs_overhead` — guards the flight recorder's cost on the hot path.
//!
//! Runs the small-scale standard table through a fresh persistent engine
//! twice per trial: once with the metrics registry enabled (the shipping
//! default — tracing stays off, exactly the daemon's steady state) and
//! once with the registry kill-switched off, which turns every counter
//! write into a single relaxed load-and-branch. Trials interleave the
//! two configurations and the minimum wall time per configuration is
//! compared, so scheduler noise inflates both sides equally.
//!
//! ```text
//! cargo run --release -p leapfrog-bench --bin obs_overhead -- --assert
//! ```
//!
//! * `--assert` — exit nonzero when the enabled/disabled ratio exceeds
//!   the tolerance (CI runs this; without the flag the ratio is only
//!   reported).
//! * `LEAPFROG_OBS_TOLERANCE` — maximum allowed ratio (default `1.05`:
//!   the registry may cost at most 5%).
//! * `LEAPFROG_OBS_TRIALS` — trials per configuration (default `3`).

use std::time::{Duration, Instant};

use leapfrog::{Engine, EngineConfig, Options};
use leapfrog_bench::rows::run_row_in;
use leapfrog_suite::{standard_benchmarks, Scale};

/// One pass of the whole small-scale table through a fresh engine.
fn run_table_once() -> Duration {
    let benches = standard_benchmarks(Scale::Small);
    let mut engine = Engine::new(EngineConfig::from_options(&Options::default()));
    let start = Instant::now();
    for b in &benches {
        let row = run_row_in(&mut engine, b);
        assert!(row.verified, "row {} must verify either way", row.name);
    }
    start.elapsed()
}

fn main() {
    let assert_mode = std::env::args().any(|a| a == "--assert");
    let tolerance: f64 = std::env::var("LEAPFROG_OBS_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.05);
    let trials: usize = std::env::var("LEAPFROG_OBS_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    // The guard measures the registry alone: tracing off on both sides
    // (the shipping default), metrics toggled by the kill switch.
    leapfrog_obs::set_trace_enabled(false);

    // One warm-up pass absorbs lazy statics, page faults and the first
    // allocator growth, which would otherwise all land on the first
    // measured configuration.
    leapfrog_obs::set_metrics_enabled(true);
    let _ = run_table_once();

    let mut with_metrics = Duration::MAX;
    let mut without_metrics = Duration::MAX;
    for trial in 0..trials {
        leapfrog_obs::set_metrics_enabled(false);
        let off = run_table_once();
        leapfrog_obs::set_metrics_enabled(true);
        let on = run_table_once();
        without_metrics = without_metrics.min(off);
        with_metrics = with_metrics.min(on);
        println!("trial {trial}: metrics on {on:.2?}, off {off:.2?}");
    }
    leapfrog_obs::set_metrics_enabled(true);

    let ratio = with_metrics.as_secs_f64() / without_metrics.as_secs_f64().max(1e-9);
    println!(
        "obs_overhead: min {with_metrics:.2?} with the registry, {without_metrics:.2?} \
         without — ratio {ratio:.4} (tolerance {tolerance:.2})"
    );
    if ratio > tolerance {
        eprintln!("obs_overhead: registry overhead {ratio:.4} exceeds {tolerance:.2}");
        if assert_mode {
            std::process::exit(1);
        }
    } else {
        println!("obs_overhead: within tolerance");
    }
}
