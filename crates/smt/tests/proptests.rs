//! Property-based tests for the SMT substrate: bit-blasting must agree
//! with the reference evaluator, and the term simplifier must preserve
//! semantics.

use leapfrog_bitvec::BitVec;
use leapfrog_smt::blast::sat_qf;
use leapfrog_smt::{check_valid, CheckResult, Declarations, Formula, Model, Term};
use proptest::prelude::*;

const W: usize = 6;

/// A strategy for terms over two `W`-bit variables.
fn term() -> impl Strategy<Value = TermSpec> {
    let leaf = prop_oneof![
        Just(TermSpec::X),
        Just(TermSpec::Y),
        (any::<u64>()).prop_map(|v| TermSpec::Lit(v & ((1 << W) - 1))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), 0usize..W, 1usize..=W).prop_map(|(t, s, l)| {
                TermSpec::Slice(Box::new(t), s, l)
            }),
            (inner.clone(), inner).prop_map(|(a, b)| TermSpec::Concat(Box::new(a), Box::new(b))),
        ]
    })
}

/// A buildable/evaluable term description (widths normalized during build).
#[derive(Debug, Clone)]
enum TermSpec {
    X,
    Y,
    Lit(u64),
    Slice(Box<TermSpec>, usize, usize),
    Concat(Box<TermSpec>, Box<TermSpec>),
}

impl TermSpec {
    fn build(&self, decls: &Declarations) -> Term {
        match self {
            TermSpec::X => Term::var(leapfrog_smt::BvVar(0)),
            TermSpec::Y => Term::var(leapfrog_smt::BvVar(1)),
            TermSpec::Lit(v) => Term::lit(BitVec::from_u64(*v, W)),
            TermSpec::Slice(t, s, l) => {
                let inner = t.build(decls);
                let w = inner.width(decls);
                if w == 0 {
                    return inner;
                }
                let s = *s % w;
                let l = (*l).min(w - s).max(1).min(w - s);
                if l == 0 {
                    inner
                } else {
                    Term::slice(inner, s, l)
                }
            }
            TermSpec::Concat(a, b) => Term::concat(a.build(decls), b.build(decls)),
        }
    }
}

fn decls() -> Declarations {
    let mut d = Declarations::new();
    d.declare("x", W);
    d.declare("y", W);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// If the blaster reports SAT, the model must satisfy the formula; if
    /// UNSAT, brute-force enumeration must agree.
    #[test]
    fn blaster_agrees_with_enumeration(a in term(), b in term(), negate in any::<bool>()) {
        let d = decls();
        let (ta, tb) = (a.build(&d), b.build(&d));
        let (wa, wb) = (ta.width(&d), tb.width(&d));
        let w = wa.min(wb);
        prop_assume!(w > 0);
        let atom = Formula::eq(Term::slice(ta, 0, w), Term::slice(tb, 0, w));
        let f = if negate { Formula::not(atom) } else { atom };

        let brute = {
            let mut found = false;
            'outer: for xv in 0u64..(1 << W) {
                for yv in 0u64..(1 << W) {
                    let mut m = Model::new();
                    m.set(leapfrog_smt::BvVar(0), BitVec::from_u64(xv, W));
                    m.set(leapfrog_smt::BvVar(1), BitVec::from_u64(yv, W));
                    if f.eval(&d, &m) {
                        found = true;
                        break 'outer;
                    }
                }
            }
            found
        };
        match sat_qf(&d, &f) {
            Some(m) => {
                prop_assert!(f.eval(&d, &m), "model does not satisfy the formula");
                prop_assert!(brute);
            }
            None => prop_assert!(!brute, "blaster said UNSAT but enumeration found a model"),
        }
    }

    /// Validity of `t = t` after arbitrary simplifier rewrites.
    #[test]
    fn reflexivity_is_valid(a in term()) {
        let d = decls();
        let t = a.build(&d);
        prop_assume!(t.width(&d) > 0);
        let f = Formula::Eq(t.clone(), t);
        prop_assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    /// Splitting a term into two slices and re-concatenating is identity.
    #[test]
    fn slice_concat_identity_is_valid(a in term(), cut in 1usize..W) {
        let d = decls();
        let t = a.build(&d);
        let w = t.width(&d);
        prop_assume!(w >= 2);
        let cut = 1 + (cut % (w - 1));
        let f = Formula::Eq(
            Term::concat(Term::slice(t.clone(), 0, cut), Term::slice(t.clone(), cut, w - cut)),
            t,
        );
        prop_assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    /// The countermodel returned for an invalid formula really refutes it.
    #[test]
    fn countermodels_refute(a in term(), lit in any::<u64>()) {
        let d = decls();
        let t = a.build(&d);
        let w = t.width(&d);
        prop_assume!(w > 0 && w <= 64);
        let value = BitVec::from_u64(lit & (u64::MAX >> (64 - w)), w);
        let f = Formula::eq(t, Term::lit(value));
        if let CheckResult::Invalid(m) = check_valid(&d, &f) {
            prop_assert!(!f.eval(&d, &m), "countermodel does not refute");
        }
    }
}
