//! Property-based tests for the SMT substrate: bit-blasting must agree
//! with the reference evaluator, and the term simplifier must preserve
//! semantics.
//!
//! The offline build has no `proptest`; random terms are drawn from a
//! deterministic fixed-seed generator so failures stay reproducible.

use leapfrog_bitvec::BitVec;
use leapfrog_smt::blast::sat_qf;
use leapfrog_smt::{check_valid, BvVar, CheckResult, Declarations, Formula, Model, Term};

const W: usize = 6;
const CASES: usize = 96;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn decls() -> Declarations {
    let mut d = Declarations::new();
    d.declare("x", W);
    d.declare("y", W);
    d
}

/// A random term over the two `W`-bit variables, with slices kept
/// in-bounds by construction (mirroring the old proptest strategy).
fn random_term(rng: &mut Rng, depth: usize, decls: &Declarations) -> Term {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(3) {
            0 => Term::var(BvVar(0)),
            1 => Term::var(BvVar(1)),
            _ => Term::lit(BitVec::from_u64(rng.next_u64() & ((1 << W) - 1), W)),
        };
    }
    match rng.below(2) {
        0 => {
            let inner = random_term(rng, depth - 1, decls);
            let w = inner.width(decls);
            if w == 0 {
                return inner;
            }
            let s = rng.below(w);
            let l = 1 + rng.below(w - s);
            Term::slice(inner, s, l)
        }
        _ => Term::concat(
            random_term(rng, depth - 1, decls),
            random_term(rng, depth - 1, decls),
        ),
    }
}

/// If the blaster reports SAT, the model must satisfy the formula; if
/// UNSAT, brute-force enumeration must agree.
#[test]
fn blaster_agrees_with_enumeration() {
    let mut rng = Rng::new(0xb1a57);
    let d = decls();
    for case in 0..CASES {
        let ta = random_term(&mut rng, 3, &d);
        let tb = random_term(&mut rng, 3, &d);
        let w = ta.width(&d).min(tb.width(&d));
        if w == 0 {
            continue;
        }
        let atom = Formula::eq(Term::slice(ta, 0, w), Term::slice(tb, 0, w));
        let f = if rng.bool() { Formula::not(atom) } else { atom };

        let brute = 'outer: {
            for xv in 0u64..(1 << W) {
                for yv in 0u64..(1 << W) {
                    let mut m = Model::new();
                    m.set(BvVar(0), BitVec::from_u64(xv, W));
                    m.set(BvVar(1), BitVec::from_u64(yv, W));
                    if f.eval(&d, &m) {
                        break 'outer true;
                    }
                }
            }
            false
        };
        match sat_qf(&d, &f) {
            Some(m) => {
                assert!(
                    f.eval(&d, &m),
                    "case {case}: model does not satisfy the formula"
                );
                assert!(brute, "case {case}: SAT but enumeration disagrees");
            }
            None => {
                assert!(
                    !brute,
                    "case {case}: blaster said UNSAT but enumeration found a model"
                )
            }
        }
    }
}

/// Validity of `t = t` after arbitrary simplifier rewrites.
#[test]
fn reflexivity_is_valid() {
    let mut rng = Rng::new(0x3e71);
    let d = decls();
    for _ in 0..CASES {
        let t = random_term(&mut rng, 3, &d);
        if t.width(&d) == 0 {
            continue;
        }
        let f = Formula::Eq(t.clone(), t);
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }
}

/// Splitting a term into two slices and re-concatenating is identity.
#[test]
fn slice_concat_identity_is_valid() {
    let mut rng = Rng::new(0x51c0);
    let d = decls();
    for _ in 0..CASES {
        let t = random_term(&mut rng, 3, &d);
        let w = t.width(&d);
        if w < 2 {
            continue;
        }
        let cut = 1 + rng.below(w - 1);
        let f = Formula::Eq(
            Term::concat(
                Term::slice(t.clone(), 0, cut),
                Term::slice(t.clone(), cut, w - cut),
            ),
            t,
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }
}

/// The countermodel returned for an invalid formula really refutes it.
#[test]
fn countermodels_refute() {
    let mut rng = Rng::new(0xc0de);
    let d = decls();
    for _ in 0..CASES {
        let t = random_term(&mut rng, 3, &d);
        let w = t.width(&d);
        if w == 0 || w > 64 {
            continue;
        }
        let value = BitVec::from_u64(rng.next_u64() & (u64::MAX >> (64 - w)), w);
        let f = Formula::eq(t, Term::lit(value));
        if let CheckResult::Invalid(m) = check_valid(&d, &f) {
            assert!(!f.eval(&d, &m), "countermodel does not refute");
        }
    }
}
