//! Bit-blasting of quantifier-free `FOL(BV)` formulas to CNF.
//!
//! Every bitvector variable becomes a block of propositional variables (one
//! per bit, leftmost first). Terms evaluate symbolically to vectors of
//! [`BBit`]s (constants or SAT literals); equalities and boolean connectives
//! are Tseitin-encoded onto the [`leapfrog_sat::Solver`].
//!
//! The context is *incremental*: the CEGAR loop in [`crate::solve`] keeps
//! one context alive and asserts additional quantifier instantiations as
//! they are discovered, reusing all learnt clauses.
//!
//! # The cross-query blast cache
//!
//! Entailment queries re-assert the same premise conjuncts over and over:
//! the premise set `R` only ever grows during Algorithm 1, so late queries
//! share almost all of their `∀x⃗ᵢ.ψᵢ` conjuncts with earlier ones. The
//! encoder is therefore generic over a [`ClauseSink`]: blasting against a
//! [`Recorder`] produces a [`CnfTemplate`] — the Tseitin clauses over a
//! *canonical* variable numbering — which a [`SharedBlastCache`] memoizes
//! by the formula's structural key. Replaying a template into a live
//! [`BlastContext`] only remaps literals and inserts clauses; the formula
//! walk, algebraic simplification and gate construction happen once per
//! distinct conjunct for the whole run, across every query and worker
//! thread.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use leapfrog_bitvec::BitVec;
use leapfrog_sat::{
    Lit, Portfolio, PortfolioConfig, PortfolioStats, SolveResult, Solver, SolverConfig,
    SolverStats, Var,
};

use crate::term::{BvVar, Declarations, Formula, Model, Term};

/// A single blasted bit: either a known constant or a SAT literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BBit {
    /// A constant bit.
    Const(bool),
    /// A SAT literal.
    Lit(Lit),
}

/// Where Tseitin clauses go: a live CDCL solver, or a [`Recorder`] that
/// captures them as a reusable template.
pub trait ClauseSink {
    /// Allocates a fresh propositional variable, returned as its positive
    /// literal.
    fn fresh_lit(&mut self) -> Lit;
    /// Adds a clause; `false` means the sink became unsatisfiable at the
    /// root (recorders never report this — replay decides).
    fn add_clause(&mut self, lits: &[Lit]) -> bool;
}

impl ClauseSink for Solver {
    fn fresh_lit(&mut self) -> Lit {
        Lit::pos(self.new_var())
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits)
    }
}

impl ClauseSink for Portfolio {
    fn fresh_lit(&mut self) -> Lit {
        Lit::pos(self.new_var())
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Portfolio::add_clause(self, lits)
    }
}

/// A clause sink that records clauses over virtual variable ids instead of
/// solving, used to build [`CnfTemplate`]s.
#[derive(Debug, Default)]
pub struct Recorder {
    next_var: u32,
    clauses: Vec<Vec<Lit>>,
}

impl ClauseSink for Recorder {
    fn fresh_lit(&mut self) -> Lit {
        let l = Lit::pos(Var(self.next_var));
        self.next_var += 1;
        l
    }
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.clauses.push(lits.to_vec());
        true
    }
}

/// The blasting engine, generic over the clause sink.
struct Engine<S> {
    sink: S,
    var_bits: HashMap<BvVar, Vec<Lit>>,
    /// A literal constrained to be true, used to encode constants.
    true_lit: Option<Lit>,
}

impl<S: ClauseSink> Engine<S> {
    fn new(sink: S) -> Self {
        Engine {
            sink,
            var_bits: HashMap::new(),
            true_lit: None,
        }
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = self.sink.fresh_lit();
        self.sink.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    fn fresh(&mut self) -> Lit {
        self.sink.fresh_lit()
    }

    /// The SAT literals representing `v`'s bits, allocating on first use.
    fn bits_of_var(&mut self, decls: &Declarations, v: BvVar) -> Vec<Lit> {
        if let Some(bits) = self.var_bits.get(&v) {
            return bits.clone();
        }
        let w = decls.width(v);
        let bits: Vec<Lit> = (0..w).map(|_| self.sink.fresh_lit()).collect();
        self.var_bits.insert(v, bits.clone());
        bits
    }

    /// Symbolically evaluates a term to its bit representation.
    fn blast_term(&mut self, decls: &Declarations, t: &Term) -> Vec<BBit> {
        match t {
            Term::Lit(bv) => bv.iter().map(BBit::Const).collect(),
            Term::Var(v) => self
                .bits_of_var(decls, *v)
                .into_iter()
                .map(BBit::Lit)
                .collect(),
            Term::Slice(inner, start, len) => {
                let bits = self.blast_term(decls, inner);
                assert!(
                    start + len <= bits.len(),
                    "ill-typed slice reached the blaster: [{start}; {len}] of width {}",
                    bits.len()
                );
                bits[*start..start + len].to_vec()
            }
            Term::Concat(a, b) => {
                let mut bits = self.blast_term(decls, a);
                bits.extend(self.blast_term(decls, b));
                bits
            }
        }
    }

    /// Encodes "bit `a` equals bit `b`" as a literal (possibly constant).
    fn bit_iff(&mut self, a: BBit, b: BBit) -> BBit {
        match (a, b) {
            (BBit::Const(x), BBit::Const(y)) => BBit::Const(x == y),
            (BBit::Const(c), BBit::Lit(l)) | (BBit::Lit(l), BBit::Const(c)) => {
                BBit::Lit(if c { l } else { !l })
            }
            (BBit::Lit(x), BBit::Lit(y)) => {
                if x == y {
                    return BBit::Const(true);
                }
                if x == !y {
                    return BBit::Const(false);
                }
                let g = self.fresh();
                // g <-> (x <-> y)
                self.sink.add_clause(&[!g, !x, y]);
                self.sink.add_clause(&[!g, x, !y]);
                self.sink.add_clause(&[g, x, y]);
                self.sink.add_clause(&[g, !x, !y]);
                BBit::Lit(g)
            }
        }
    }

    /// Encodes the conjunction of a list of bits as a literal.
    fn big_and(&mut self, bits: Vec<BBit>) -> BBit {
        let mut lits = Vec::with_capacity(bits.len());
        for b in bits {
            match b {
                BBit::Const(false) => return BBit::Const(false),
                BBit::Const(true) => {}
                BBit::Lit(l) => lits.push(l),
            }
        }
        match lits.len() {
            0 => BBit::Const(true),
            1 => BBit::Lit(lits[0]),
            _ => {
                let g = self.fresh();
                // g -> l_i for all i; (and l_i) -> g.
                let mut last = vec![g];
                for &l in &lits {
                    self.sink.add_clause(&[!g, l]);
                    last.push(!l);
                }
                self.sink.add_clause(&last);
                BBit::Lit(g)
            }
        }
    }

    /// Tseitin-encodes a quantifier-free formula, returning a representative
    /// bit. Panics on quantifiers.
    fn blast_formula(&mut self, decls: &Declarations, f: &Formula) -> BBit {
        match f {
            Formula::Const(b) => BBit::Const(*b),
            Formula::Eq(a, b) => {
                let ba = self.blast_term(decls, a);
                let bb = self.blast_term(decls, b);
                assert_eq!(ba.len(), bb.len(), "ill-typed equality reached the blaster");
                let iffs: Vec<BBit> = ba
                    .into_iter()
                    .zip(bb)
                    .map(|(x, y)| self.bit_iff(x, y))
                    .collect();
                self.big_and(iffs)
            }
            Formula::Not(inner) => match self.blast_formula(decls, inner) {
                BBit::Const(b) => BBit::Const(!b),
                BBit::Lit(l) => BBit::Lit(!l),
            },
            Formula::And(a, b) => {
                let x = self.blast_formula(decls, a);
                let y = self.blast_formula(decls, b);
                self.big_and(vec![x, y])
            }
            Formula::Or(a, b) => {
                let x = self.blast_formula(decls, a);
                let y = self.blast_formula(decls, b);
                let (nx, ny) = (negate(x), negate(y));
                let n = self.big_and(vec![nx, ny]);
                negate(n)
            }
            Formula::Implies(a, b) => {
                let x = self.blast_formula(decls, a);
                let y = self.blast_formula(decls, b);
                let nx = negate(x);
                let (nnx, ny) = (negate(nx), negate(y));
                let n = self.big_and(vec![nnx, ny]);
                negate(n)
            }
            Formula::Forall(_, _) => {
                panic!("quantified formula reached the bit-blaster; expand quantifiers first")
            }
        }
    }

    /// Asserts a quantifier-free formula (forces it true). `false` means
    /// the sink became unsatisfiable at the root.
    fn assert_formula(&mut self, decls: &Declarations, f: &Formula) -> bool {
        match self.blast_formula(decls, f) {
            BBit::Const(true) => true,
            BBit::Const(false) => {
                let t = self.true_lit();
                self.sink.add_clause(&[!t])
            }
            BBit::Lit(l) => self.sink.add_clause(&[l]),
        }
    }
}

fn negate(b: BBit) -> BBit {
    match b {
        BBit::Const(c) => BBit::Const(!c),
        BBit::Lit(l) => BBit::Lit(!l),
    }
}

/// An incremental bit-blasting context over a CDCL solver portfolio.
///
/// With one configured lane (the default) this is exactly the old
/// single-solver context; with `LEAPFROG_SAT_PORTFOLIO=N` (or an explicit
/// [`PortfolioConfig`]) every solve large enough to clear the racing floor
/// is raced across the lanes. Models always come from the canonical lane,
/// so everything downstream of a context is byte-identical at any lane
/// count (see [`leapfrog_sat::Portfolio`] for the argument).
pub struct BlastContext {
    engine: Engine<Portfolio>,
}

impl Default for BlastContext {
    fn default() -> Self {
        Self::new()
    }
}

impl BlastContext {
    /// Creates an empty context over a solver portfolio configured from
    /// the `LEAPFROG_SAT_*` environment (the ambient-compat path).
    pub fn new() -> Self {
        BlastContext::with_portfolio(PortfolioConfig::from_env())
    }

    /// Creates an empty single-lane context with an explicit solver
    /// configuration — the typed path engines use so the knob is read
    /// once at engine construction, not once per query context.
    pub fn with_config(cfg: SolverConfig) -> Self {
        BlastContext::with_portfolio(PortfolioConfig::single(cfg))
    }

    /// Creates an empty context over an explicit solver portfolio — the
    /// typed racing path (`EngineConfig::sat_portfolio`).
    pub fn with_portfolio(cfg: PortfolioConfig) -> Self {
        BlastContext {
            engine: Engine::new(Portfolio::with_config(cfg)),
        }
    }

    /// Access to the canonical lane's solver, for statistics. Counters
    /// read here are intentionally comparable with a portfolio-off run;
    /// the racing lanes report via [`BlastContext::portfolio_stats`].
    /// Takes `&mut self` because the portfolio may first have to wait out
    /// a background canonical catch-up (see [`Portfolio::canonical`]).
    pub fn solver(&mut self) -> &Solver {
        self.engine.sink.canonical()
    }

    /// Racing statistics for this context's portfolio: race/solo counts,
    /// the per-lane win histogram and per-lane solver counters.
    pub fn portfolio_stats(&self) -> PortfolioStats {
        self.engine.sink.portfolio_stats()
    }

    /// The SAT literals representing `v`'s bits, allocating on first use.
    pub fn bits_of_var(&mut self, decls: &Declarations, v: BvVar) -> Vec<Lit> {
        self.engine.bits_of_var(decls, v)
    }

    /// Symbolically evaluates a term to its bit representation.
    pub fn blast_term(&mut self, decls: &Declarations, t: &Term) -> Vec<BBit> {
        self.engine.blast_term(decls, t)
    }

    /// Tseitin-encodes a quantifier-free formula, returning a representative
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if the formula contains a quantifier.
    pub fn blast_formula(&mut self, decls: &Declarations, f: &Formula) -> BBit {
        self.engine.blast_formula(decls, f)
    }

    /// Asserts a quantifier-free formula (forces it true).
    ///
    /// Returns `false` if the context became unsatisfiable at the root.
    pub fn assert_formula(&mut self, decls: &Declarations, f: &Formula) -> bool {
        self.engine.assert_formula(decls, f)
    }

    /// Asserts a quantifier-free formula through the blast cache: the
    /// formula's CNF template is computed at most once per structural key
    /// for the cache's whole lifetime and replayed here with fresh
    /// auxiliary variables. Returns `(still_satisfiable, cache_hit)`.
    /// When the cache is disabled (`LEAPFROG_NO_BLAST_CACHE=1` at cache
    /// construction), this degrades to a direct uncached assert.
    pub fn assert_formula_cached(
        &mut self,
        decls: &Declarations,
        f: &Formula,
        cache: &SharedBlastCache,
    ) -> (bool, bool) {
        if cache.disabled {
            return (self.assert_formula(decls, f), false);
        }
        let (template, vars, hit) = cache.lookup_or_build(decls, f);
        (self.replay_template(decls, &template, &vars), hit)
    }

    /// Replays a CNF template: the template's canonical input bits map onto
    /// `vars`' live bits (allocated on first use), auxiliary template
    /// variables get fresh SAT variables, and every clause is inserted.
    fn replay_template(
        &mut self,
        decls: &Declarations,
        template: &CnfTemplate,
        vars: &[BvVar],
    ) -> bool {
        let mut map: Vec<Lit> = Vec::with_capacity(template.num_vars as usize);
        for v in vars {
            map.extend(self.engine.bits_of_var(decls, *v));
        }
        debug_assert_eq!(
            map.len(),
            template.input_bits,
            "cache key collision: input widths do not match the template"
        );
        while map.len() < template.num_vars as usize {
            let l = self.engine.fresh();
            map.push(l);
        }
        let mut ok = true;
        let mut mapped = Vec::new();
        for clause in &template.clauses {
            mapped.clear();
            mapped.extend(clause.iter().map(|l| {
                let base = map[l.var().0 as usize];
                if l.is_neg() {
                    !base
                } else {
                    base
                }
            }));
            ok &= self.engine.sink.add_clause(&mapped);
        }
        ok
    }

    /// A fresh, unconstrained SAT literal — used by incremental callers as
    /// an *activation literal*: gate per-query clauses with its negation,
    /// solve under the assumption, then retire the query by asserting the
    /// negation (see [`crate::solve`] / `leapfrog_logic`'s guard sessions).
    pub fn fresh_activation_lit(&mut self) -> Lit {
        self.engine.fresh()
    }

    /// Adds a raw clause over literals previously handed out by this
    /// context. Returns `false` if the solver became unsatisfiable.
    pub fn add_clause_raw(&mut self, lits: &[Lit]) -> bool {
        self.engine.sink.add_clause(lits)
    }

    /// Solves the asserted constraints; on SAT, extracts a model for all
    /// variables that have been blasted so far (unassigned bits read as 0).
    pub fn solve(&mut self, decls: &Declarations) -> Option<Model> {
        self.solve_with(decls, &[])
    }

    /// [`BlastContext::solve`] under assumption literals: the assumptions
    /// hold for this call only, so activation-gated clause groups can be
    /// switched on per query without permanent assertion.
    pub fn solve_with(&mut self, decls: &Declarations, assumptions: &[Lit]) -> Option<Model> {
        match self.engine.sink.solve(assumptions) {
            SolveResult::Unsat => None,
            SolveResult::Sat => {
                let mut m = Model::new();
                // Read the model through the canonical lane directly: one
                // catch-up join up front instead of a lock per literal.
                let Engine { sink, var_bits, .. } = &mut self.engine;
                let canon = sink.canonical();
                for (&v, bits) in var_bits.iter() {
                    let mut bv = BitVec::zeros(bits.len());
                    for (i, &l) in bits.iter().enumerate() {
                        if canon.lit_value(l) == Some(true) {
                            bv.set(i, true);
                        }
                    }
                    m.set(v, bv);
                }
                // Give every declared-but-unblasted variable a zero value so
                // callers can evaluate any formula over `decls`.
                for v in decls.vars() {
                    if m.get(v).is_none() {
                        m.set(v, BitVec::zeros(decls.width(v)));
                    }
                }
                Some(m)
            }
        }
    }

    /// Number of SAT variables allocated (diagnostics).
    pub fn num_sat_vars(&self) -> usize {
        self.engine.sink.num_vars()
    }

    /// Number of live clauses in the underlying solver (original + learnt,
    /// minus deleted), in O(1).
    pub fn num_clauses(&self) -> usize {
        self.engine.sink.num_clauses()
    }

    /// Monotone count of root-level clause insertions, in O(1) — the
    /// growth meter incremental sessions budget their rebuilds against.
    pub fn clauses_added(&self) -> u64 {
        self.engine.sink.clauses_added()
    }
}

/// The CNF of one quantifier-free formula over a canonical variable
/// numbering: ids `0..input_bits` are the bits of the formula's distinct
/// bitvector variables in first-occurrence order (leftmost bit first), the
/// remaining ids are Tseitin auxiliaries in allocation order.
#[derive(Debug)]
pub struct CnfTemplate {
    /// Total input bits (sum of the distinct variables' widths).
    input_bits: usize,
    /// Total template variables (input bits + auxiliaries).
    num_vars: u32,
    /// The recorded clauses, over template variable ids.
    clauses: Vec<Vec<Lit>>,
}

impl CnfTemplate {
    /// Number of clauses the template replays.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

/// Builds the canonical structural key of a quantifier-free formula and
/// collects its distinct variables in first-occurrence order. Two formulas
/// share a key iff they are identical up to a width-preserving renaming of
/// variables — exactly when they blast to the same clauses. Shared with
/// [`crate::solve`]'s instantiation ledger, which keys `∀`-block bodies the
/// same way so validation verdicts transfer across solver contexts.
pub(crate) fn canonical_key(decls: &Declarations, f: &Formula, vars: &mut Vec<BvVar>) -> String {
    fn term(t: &Term, decls: &Declarations, vars: &mut Vec<BvVar>, out: &mut String) {
        match t {
            Term::Lit(bv) => {
                out.push('#');
                for b in bv.iter() {
                    out.push(if b { '1' } else { '0' });
                }
            }
            Term::Var(v) => {
                let idx = match vars.iter().position(|u| u == v) {
                    Some(i) => i,
                    None => {
                        vars.push(*v);
                        vars.len() - 1
                    }
                };
                out.push('v');
                out.push_str(&idx.to_string());
                out.push(':');
                out.push_str(&decls.width(*v).to_string());
            }
            Term::Slice(inner, s, l) => {
                out.push('[');
                out.push_str(&s.to_string());
                out.push(';');
                out.push_str(&l.to_string());
                term(inner, decls, vars, out);
                out.push(']');
            }
            Term::Concat(a, b) => {
                out.push('(');
                term(a, decls, vars, out);
                out.push('+');
                term(b, decls, vars, out);
                out.push(')');
            }
        }
    }
    fn formula(f: &Formula, decls: &Declarations, vars: &mut Vec<BvVar>, out: &mut String) {
        match f {
            Formula::Const(b) => out.push(if *b { 'T' } else { 'F' }),
            Formula::Eq(a, b) => {
                out.push('=');
                out.push('(');
                term(a, decls, vars, out);
                out.push(',');
                term(b, decls, vars, out);
                out.push(')');
            }
            Formula::Not(g) => {
                out.push('!');
                formula(g, decls, vars, out);
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                out.push(match f {
                    Formula::And(_, _) => '&',
                    Formula::Or(_, _) => '|',
                    _ => '>',
                });
                out.push('(');
                formula(a, decls, vars, out);
                out.push(',');
                formula(b, decls, vars, out);
                out.push(')');
            }
            Formula::Forall(_, _) => {
                panic!("quantified formula reached the blast cache; expand quantifiers first")
            }
        }
    }
    let mut out = String::new();
    formula(f, decls, vars, &mut out);
    out
}

/// Blasts `f` against a [`Recorder`] with `vars`' bits pre-allocated as the
/// canonical input block, producing a replayable template.
fn build_template(decls: &Declarations, f: &Formula, vars: &[BvVar]) -> CnfTemplate {
    let mut engine = Engine::new(Recorder::default());
    let mut input_bits = 0;
    for v in vars {
        let bits = engine.bits_of_var(decls, *v);
        input_bits += bits.len();
    }
    engine.assert_formula(decls, f);
    CnfTemplate {
        input_bits,
        num_vars: engine.sink.next_var,
        clauses: engine.sink.clauses,
    }
}

/// A snapshot of the cache contents. Hit/miss *rates* are accounted by
/// the callers (per solver / per session, merged into [`crate::QueryStats`])
/// — the cache itself only tracks what it stores.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Distinct templates currently stored.
    pub entries: usize,
}

/// A structural CNF cache shared across queries — and across worker
/// threads — behind an `Arc<Mutex<…>>`. Templates are pure functions of
/// the canonical key, so concurrent duplicate builds are harmless (last
/// insert wins, both are identical). `LEAPFROG_NO_BLAST_CACHE=1` at
/// construction disables it — every cached assert degrades to a direct
/// one — as an ablation knob; results are identical either way.
#[derive(Debug, Clone)]
pub struct SharedBlastCache {
    inner: Arc<Mutex<CacheInner>>,
    disabled: bool,
}

impl Default for SharedBlastCache {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<String, Arc<CnfTemplate>>,
}

impl SharedBlastCache {
    /// Creates an empty cache, honouring `LEAPFROG_NO_BLAST_CACHE` (read
    /// once, here).
    pub fn new() -> Self {
        Self::with_enabled(std::env::var("LEAPFROG_NO_BLAST_CACHE").as_deref() != Ok("1"))
    }

    /// Creates an empty cache with caching explicitly on or off,
    /// independent of the environment — the typed configuration path
    /// (`EngineConfig::blast_cache`) uses this; [`SharedBlastCache::new`]
    /// remains the env-compat constructor.
    pub fn with_enabled(enabled: bool) -> Self {
        SharedBlastCache {
            inner: Arc::default(),
            disabled: !enabled,
        }
    }

    /// Looks up (or builds and stores) the CNF template for `f`. Returns
    /// the template, the formula's distinct variables in canonical order,
    /// and whether the lookup hit.
    fn lookup_or_build(
        &self,
        decls: &Declarations,
        f: &Formula,
    ) -> (Arc<CnfTemplate>, Vec<BvVar>, bool) {
        let mut vars = Vec::new();
        let key = canonical_key(decls, f, &mut vars);
        if let Some(t) = self.inner.lock().unwrap().map.get(&key).cloned() {
            return (t, vars, true);
        }
        // Build outside the lock: templates are pure, a racing duplicate
        // build is wasted work, not an error.
        let template = Arc::new(build_template(decls, f, &vars));
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.map.entry(key).or_insert_with(|| template.clone());
        let entry = entry.clone();
        (entry, vars, false)
    }

    /// A snapshot of the cache contents.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.inner.lock().unwrap().map.len(),
        }
    }

    /// Whether `LEAPFROG_NO_BLAST_CACHE=1` disabled this cache at
    /// construction — hit-rate assertions are vacuous then (the ablation
    /// CI job runs the whole suite with the cache off).
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Serializes every stored template to a line-based text format:
    /// a `t <num_vars> <input_bits> <key>` header per template followed by
    /// one DIMACS-style `c <lit>…` line per clause (positive literal `v` is
    /// `v+1`, negated is `-(v+1)`). Templates are sorted by key so the
    /// output is deterministic.
    pub fn export_text(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut keys: Vec<&String> = inner.map.keys().collect();
        keys.sort();
        let mut out = String::from("# leapfrog-blast-cache v1\n");
        for key in keys {
            let t = &inner.map[key];
            out.push_str(&format!("t {} {} {key}\n", t.num_vars, t.input_bits));
            for clause in &t.clauses {
                out.push('c');
                for l in clause {
                    let code = l.var().0 as i64 + 1;
                    out.push(' ');
                    out.push_str(&(if l.is_neg() { -code } else { code }).to_string());
                }
                out.push('\n');
            }
        }
        out
    }

    /// Loads templates from [`SharedBlastCache::export_text`] output,
    /// merging into the current contents (existing keys win — templates
    /// are pure functions of the key, so the resident copy is identical).
    /// Returns the number of templates read. A disabled cache ignores the
    /// import and reads zero templates.
    pub fn import_text(&self, text: &str) -> Result<usize, String> {
        if self.disabled {
            return Ok(0);
        }
        let mut read = 0;
        let mut current: Option<(String, CnfTemplate)> = None;
        let mut inner = self.inner.lock().unwrap();
        let flush = |current: &mut Option<(String, CnfTemplate)>,
                     inner: &mut CacheInner,
                     read: &mut usize| {
            if let Some((key, template)) = current.take() {
                inner.map.entry(key).or_insert_with(|| Arc::new(template));
                *read += 1;
            }
        };
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("t ") {
                flush(&mut current, &mut inner, &mut read);
                let mut parts = rest.splitn(3, ' ');
                let num_vars: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {line_no}: bad template var count"))?;
                let input_bits: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {line_no}: bad template input width"))?;
                let key = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: missing template key"))?
                    .to_string();
                current = Some((
                    key,
                    CnfTemplate {
                        input_bits,
                        num_vars,
                        clauses: Vec::new(),
                    },
                ));
            } else if let Some(rest) = line.strip_prefix('c') {
                let (_, template) = current
                    .as_mut()
                    .ok_or_else(|| format!("line {line_no}: clause before any template"))?;
                let clause: Vec<Lit> = rest
                    .split_whitespace()
                    .map(|tok| {
                        let code: i64 = tok
                            .parse()
                            .map_err(|_| format!("line {line_no}: bad literal {tok:?}"))?;
                        if code == 0 || code.unsigned_abs() > template.num_vars as u64 {
                            return Err(format!("line {line_no}: literal {code} out of range"));
                        }
                        let v = Var(code.unsigned_abs() as u32 - 1);
                        Ok(if code < 0 { Lit::neg(v) } else { Lit::pos(v) })
                    })
                    .collect::<Result<_, String>>()?;
                if clause.is_empty() {
                    return Err(format!("line {line_no}: empty clause"));
                }
                template.clauses.push(clause);
            } else {
                return Err(format!("line {line_no}: unrecognized cache line"));
            }
        }
        flush(&mut current, &mut inner, &mut read);
        Ok(read)
    }
}

/// Convenience: checks satisfiability of a single quantifier-free formula.
pub fn sat_qf(decls: &Declarations, f: &Formula) -> Option<Model> {
    sat_qf_counting(decls, &PortfolioConfig::from_env(), f).0
}

/// [`sat_qf`] with an explicit solver portfolio and the short-lived
/// context's CDCL counters handed back, so callers (the CEGAR validation
/// path) can fold the work into their query statistics instead of losing
/// it with the context. These validation contexts are typically far below
/// the portfolio's racing floor, so in practice they solve on the
/// canonical lane alone.
pub fn sat_qf_counting(
    decls: &Declarations,
    cfg: &PortfolioConfig,
    f: &Formula,
) -> (Option<Model>, SolverStats, PortfolioStats) {
    debug_assert!(f.is_quantifier_free());
    let mut ctx = BlastContext::with_portfolio(cfg.clone());
    if !ctx.assert_formula(decls, f) {
        return (None, ctx.solver().stats(), ctx.portfolio_stats());
    }
    let m = ctx.solve(decls);
    (m, ctx.solver().stats(), ctx.portfolio_stats())
}

#[allow(unused)]
fn _assert_var_send(_: Var) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn var_equals_literal_model() {
        let mut d = Declarations::new();
        let x = d.declare("x", 5);
        let f = Formula::eq(Term::var(x), Term::lit(bv("10110")));
        let m = sat_qf(&d, &f).expect("sat");
        assert_eq!(m.get(x), Some(&bv("10110")));
    }

    #[test]
    fn contradiction_unsat() {
        let mut d = Declarations::new();
        let x = d.declare("x", 3);
        let f = Formula::and(
            Formula::eq(Term::var(x), Term::lit(bv("101"))),
            Formula::eq(Term::var(x), Term::lit(bv("110"))),
        );
        assert!(sat_qf(&d, &f).is_none());
    }

    #[test]
    fn concat_slice_consistency() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let y = d.declare("y", 4);
        // x ++ y = 10110110  forces x = 1011, y = 0110.
        let f = Formula::eq(
            Term::concat(Term::var(x), Term::var(y)),
            Term::lit(bv("10110110")),
        );
        let m = sat_qf(&d, &f).expect("sat");
        assert_eq!(m.get(x), Some(&bv("1011")));
        assert_eq!(m.get(y), Some(&bv("0110")));
    }

    #[test]
    fn slice_constrains_middle_bits() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        let f = Formula::and(
            Formula::eq(Term::slice(Term::var(x), 2, 4), Term::lit(bv("1111"))),
            Formula::eq(Term::slice(Term::var(x), 0, 2), Term::lit(bv("00"))),
        );
        let m = sat_qf(&d, &f).expect("sat");
        let xv = m.get(x).unwrap();
        assert_eq!(xv.subrange(0, 2), bv("00"));
        assert_eq!(xv.subrange(2, 4), bv("1111"));
    }

    #[test]
    fn implication_and_or_encoding() {
        let mut d = Declarations::new();
        let x = d.declare("x", 1);
        let y = d.declare("y", 1);
        let one = || Term::lit(bv("1"));
        let zero = || Term::lit(bv("0"));
        // (x=1 -> y=1) & x=1 & y=0 is unsat.
        let f = Formula::and(
            Formula::and(
                Formula::implies(
                    Formula::eq(Term::var(x), one()),
                    Formula::eq(Term::var(y), one()),
                ),
                Formula::eq(Term::var(x), one()),
            ),
            Formula::eq(Term::var(y), zero()),
        );
        assert!(sat_qf(&d, &f).is_none());
        // (x=1 | y=1) & x=0 forces y=1.
        let g = Formula::and(
            Formula::or(
                Formula::eq(Term::var(x), one()),
                Formula::eq(Term::var(y), one()),
            ),
            Formula::eq(Term::var(x), zero()),
        );
        let m = sat_qf(&d, &g).expect("sat");
        assert_eq!(m.get(y), Some(&bv("1")));
    }

    #[test]
    fn empty_equality_is_true() {
        let d = Declarations::new();
        let f = Formula::Eq(Term::empty(), Term::empty());
        assert!(sat_qf(&d, &f).is_some());
    }

    #[test]
    fn model_satisfies_formula_randomized() {
        // Random formulas: if the blaster reports SAT, the extracted model
        // must evaluate to true under the reference evaluator.
        let mut state = 0x5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..40 {
            let mut d = Declarations::new();
            let x = d.declare("x", 6);
            let y = d.declare("y", 6);
            let rand_term = |next: &mut dyn FnMut() -> u32| -> Term {
                match next() % 4 {
                    0 => Term::var(x),
                    1 => Term::var(y),
                    2 => {
                        let s = (next() % 4) as usize;
                        Term::slice(Term::var(x), s, 6 - s)
                    }
                    _ => Term::lit(BitVec::from_u64(next() as u64, 6)),
                }
            };
            let mut f = Formula::tt();
            for _ in 0..3 {
                let a = rand_term(&mut next);
                let b = rand_term(&mut next);
                let (wa, wb) = (a.width(&d), b.width(&d));
                let w = wa.min(wb);
                let atom = Formula::eq(Term::slice(a, 0, w), Term::slice(b, 0, w));
                f = if next() % 2 == 0 {
                    Formula::and(f, atom)
                } else {
                    Formula::and(f, Formula::not(atom))
                };
            }
            if let Some(m) = sat_qf(&d, &f) {
                assert!(f.eval(&d, &m), "model does not satisfy formula: {f:?}");
            }
        }
    }

    #[test]
    fn incremental_assertions_accumulate() {
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let mut ctx = BlastContext::new();
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("00")))),
        );
        assert!(ctx.solve(&d).is_some());
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("01")))),
        );
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("10")))),
        );
        let m = ctx.solve(&d).expect("still sat");
        assert_eq!(m.get(x), Some(&bv("11")));
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("11")))),
        );
        assert!(ctx.solve(&d).is_none());
    }

    #[test]
    fn cached_assertions_match_uncached() {
        // The same constraints asserted through the cache must behave
        // identically to direct assertion, across repeated contexts.
        let mut d = Declarations::new();
        let x = d.declare("x", 3);
        let y = d.declare("y", 3);
        let cache = SharedBlastCache::new();
        let f1 = Formula::eq(Term::var(x), Term::var(y));
        let f2 = Formula::not(Formula::eq(Term::var(x), Term::lit(bv("010"))));
        let mut hits = 0;
        let mut misses = 0;
        for round in 0..3 {
            let mut ctx = BlastContext::new();
            let (ok1, hit1) = ctx.assert_formula_cached(&d, &f1, &cache);
            let (ok2, hit2) = ctx.assert_formula_cached(&d, &f2, &cache);
            assert!(ok1 && ok2);
            if !cache.is_disabled() {
                assert_eq!(hit1, round > 0, "first round misses, later rounds hit");
                assert_eq!(hit2, round > 0);
            }
            for hit in [hit1, hit2] {
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            let m = ctx.solve(&d).expect("sat");
            assert_eq!(m.get(x), m.get(y));
            assert_ne!(m.get(x), Some(&bv("010")));
        }
        if !cache.is_disabled() {
            assert_eq!(misses, 2);
            assert_eq!(hits, 4);
            assert_eq!(cache.stats().entries, 2);
        }
    }

    #[test]
    fn cache_key_is_width_sensitive() {
        // Same shape, different widths: must not share a template.
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let b = d.declare("b", 3);
        let cache = SharedBlastCache::new();
        let fa = Formula::eq(Term::var(a), Term::lit(bv("11")));
        let fb = Formula::eq(Term::var(b), Term::lit(bv("111")));
        let mut ctx = BlastContext::new();
        let (_, hit_a) = ctx.assert_formula_cached(&d, &fa, &cache);
        let (_, hit_b) = ctx.assert_formula_cached(&d, &fb, &cache);
        assert!(!hit_a && !hit_b);
        let m = ctx.solve(&d).expect("sat");
        assert_eq!(m.get(a), Some(&bv("11")));
        assert_eq!(m.get(b), Some(&bv("111")));
    }

    #[test]
    fn cache_hits_across_variable_renaming() {
        // x = 10 and y = 10 differ only by variable identity: one template.
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let y = d.declare("y", 2);
        let cache = SharedBlastCache::new();
        let mut ctx = BlastContext::new();
        let (_, h1) =
            ctx.assert_formula_cached(&d, &Formula::eq(Term::var(x), Term::lit(bv("10"))), &cache);
        let (_, h2) =
            ctx.assert_formula_cached(&d, &Formula::eq(Term::var(y), Term::lit(bv("10"))), &cache);
        assert!(!h1);
        if !cache.is_disabled() {
            assert!(h2, "renamed formula must reuse the template");
        }
        let m = ctx.solve(&d).expect("sat");
        assert_eq!(m.get(x), Some(&bv("10")));
        assert_eq!(m.get(y), Some(&bv("10")));
    }

    #[test]
    fn cache_distinguishes_repeated_variable_patterns() {
        // x = y and x = x canonicalize differently (v0=v1 vs v0=v0).
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let y = d.declare("y", 2);
        let cache = SharedBlastCache::new();
        let mut vars1 = Vec::new();
        let k1 = canonical_key(&d, &Formula::Eq(Term::var(x), Term::var(y)), &mut vars1);
        let mut vars2 = Vec::new();
        let k2 = canonical_key(&d, &Formula::Eq(Term::var(x), Term::var(x)), &mut vars2);
        assert_ne!(k1, k2);
        assert_eq!(vars1, vec![x, y]);
        assert_eq!(vars2, vec![x]);
        drop(cache);
    }

    #[test]
    fn cache_export_import_round_trips() {
        // Templates built in one cache must replay identically from a
        // cache reloaded out of the text format: the first assert through
        // the imported cache is already a hit, and models agree.
        let mut d = Declarations::new();
        let x = d.declare("x", 3);
        let y = d.declare("y", 3);
        let cache = SharedBlastCache::with_enabled(true);
        let f1 = Formula::eq(Term::var(x), Term::var(y));
        let f2 = Formula::not(Formula::eq(Term::var(x), Term::lit(bv("010"))));
        let mut ctx = BlastContext::new();
        ctx.assert_formula_cached(&d, &f1, &cache);
        ctx.assert_formula_cached(&d, &f2, &cache);
        let text = cache.export_text();

        let reloaded = SharedBlastCache::with_enabled(true);
        assert_eq!(reloaded.import_text(&text), Ok(2));
        assert_eq!(reloaded.stats().entries, 2);
        // Round trip is stable: exporting the import reproduces the text.
        assert_eq!(reloaded.export_text(), text);
        let mut ctx2 = BlastContext::new();
        let (ok1, hit1) = ctx2.assert_formula_cached(&d, &f1, &reloaded);
        let (ok2, hit2) = ctx2.assert_formula_cached(&d, &f2, &reloaded);
        assert!(ok1 && ok2);
        assert!(hit1 && hit2, "imported templates must serve immediately");
        let m = ctx2.solve(&d).expect("sat");
        assert_eq!(m.get(x), m.get(y));
        assert_ne!(m.get(x), Some(&bv("010")));
    }

    #[test]
    fn cache_import_rejects_garbage() {
        let cache = SharedBlastCache::with_enabled(true);
        assert!(cache.import_text("t 3 nope key").is_err());
        assert!(
            cache.import_text("c 1 2").is_err(),
            "clause before template"
        );
        assert!(cache.import_text("t 2 2 k\nc 5").is_err(), "out of range");
        assert!(
            cache.import_text("t 2 2 k\nc 4294967297").is_err(),
            "a literal overflowing u32 must not truncate into range"
        );
        assert!(cache.import_text("bogus").is_err());
    }

    #[test]
    fn cached_contradiction_still_unsat() {
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let cache = SharedBlastCache::new();
        let f = Formula::and(
            Formula::eq(Term::var(x), Term::lit(bv("01"))),
            Formula::eq(Term::var(x), Term::lit(bv("10"))),
        );
        for _ in 0..2 {
            let mut ctx = BlastContext::new();
            let (ok, _) = ctx.assert_formula_cached(&d, &f, &cache);
            // Root-level constant false is detected at replay time.
            assert!(!ok || ctx.solve(&d).is_none());
        }
    }
}
