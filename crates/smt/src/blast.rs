//! Bit-blasting of quantifier-free `FOL(BV)` formulas to CNF.
//!
//! Every bitvector variable becomes a block of propositional variables (one
//! per bit, leftmost first). Terms evaluate symbolically to vectors of
//! [`BBit`]s (constants or SAT literals); equalities and boolean connectives
//! are Tseitin-encoded onto the [`leapfrog_sat::Solver`].
//!
//! The context is *incremental*: the CEGAR loop in [`crate::solve`] keeps
//! one context alive and asserts additional quantifier instantiations as
//! they are discovered, reusing all learnt clauses.

use std::collections::HashMap;

use leapfrog_bitvec::BitVec;
use leapfrog_sat::{Lit, SolveResult, Solver, Var};

use crate::term::{BvVar, Declarations, Formula, Model, Term};

/// A single blasted bit: either a known constant or a SAT literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BBit {
    /// A constant bit.
    Const(bool),
    /// A SAT literal.
    Lit(Lit),
}

/// An incremental bit-blasting context over a CDCL solver.
pub struct BlastContext {
    solver: Solver,
    var_bits: HashMap<BvVar, Vec<Lit>>,
    /// A literal constrained to be true, used to encode constants.
    true_lit: Option<Lit>,
}

impl Default for BlastContext {
    fn default() -> Self {
        Self::new()
    }
}

impl BlastContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        BlastContext {
            solver: Solver::new(),
            var_bits: HashMap::new(),
            true_lit: None,
        }
    }

    /// Access to the underlying solver's statistics.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = self.solver.new_var();
        let l = Lit::pos(v);
        self.solver.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// The SAT literals representing `v`'s bits, allocating on first use.
    pub fn bits_of_var(&mut self, decls: &Declarations, v: BvVar) -> Vec<Lit> {
        if let Some(bits) = self.var_bits.get(&v) {
            return bits.clone();
        }
        let w = decls.width(v);
        let bits: Vec<Lit> = (0..w).map(|_| Lit::pos(self.solver.new_var())).collect();
        self.var_bits.insert(v, bits.clone());
        bits
    }

    /// Symbolically evaluates a term to its bit representation.
    pub fn blast_term(&mut self, decls: &Declarations, t: &Term) -> Vec<BBit> {
        match t {
            Term::Lit(bv) => bv.iter().map(BBit::Const).collect(),
            Term::Var(v) => self
                .bits_of_var(decls, *v)
                .into_iter()
                .map(BBit::Lit)
                .collect(),
            Term::Slice(inner, start, len) => {
                let bits = self.blast_term(decls, inner);
                assert!(
                    start + len <= bits.len(),
                    "ill-typed slice reached the blaster: [{start}; {len}] of width {}",
                    bits.len()
                );
                bits[*start..start + len].to_vec()
            }
            Term::Concat(a, b) => {
                let mut bits = self.blast_term(decls, a);
                bits.extend(self.blast_term(decls, b));
                bits
            }
        }
    }

    /// Encodes "bit `a` equals bit `b`" as a literal (possibly constant).
    fn bit_iff(&mut self, a: BBit, b: BBit) -> BBit {
        match (a, b) {
            (BBit::Const(x), BBit::Const(y)) => BBit::Const(x == y),
            (BBit::Const(c), BBit::Lit(l)) | (BBit::Lit(l), BBit::Const(c)) => {
                BBit::Lit(if c { l } else { !l })
            }
            (BBit::Lit(x), BBit::Lit(y)) => {
                if x == y {
                    return BBit::Const(true);
                }
                if x == !y {
                    return BBit::Const(false);
                }
                let g = self.fresh();
                // g <-> (x <-> y)
                self.solver.add_clause(&[!g, !x, y]);
                self.solver.add_clause(&[!g, x, !y]);
                self.solver.add_clause(&[g, x, y]);
                self.solver.add_clause(&[g, !x, !y]);
                BBit::Lit(g)
            }
        }
    }

    /// Encodes the conjunction of a list of bits as a literal.
    fn big_and(&mut self, bits: Vec<BBit>) -> BBit {
        let mut lits = Vec::with_capacity(bits.len());
        for b in bits {
            match b {
                BBit::Const(false) => return BBit::Const(false),
                BBit::Const(true) => {}
                BBit::Lit(l) => lits.push(l),
            }
        }
        match lits.len() {
            0 => BBit::Const(true),
            1 => BBit::Lit(lits[0]),
            _ => {
                let g = self.fresh();
                // g -> l_i for all i; (and l_i) -> g.
                let mut last = vec![g];
                for &l in &lits {
                    self.solver.add_clause(&[!g, l]);
                    last.push(!l);
                }
                self.solver.add_clause(&last);
                BBit::Lit(g)
            }
        }
    }

    /// Tseitin-encodes a quantifier-free formula, returning a representative
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if the formula contains a quantifier.
    pub fn blast_formula(&mut self, decls: &Declarations, f: &Formula) -> BBit {
        match f {
            Formula::Const(b) => BBit::Const(*b),
            Formula::Eq(a, b) => {
                let ba = self.blast_term(decls, a);
                let bb = self.blast_term(decls, b);
                assert_eq!(ba.len(), bb.len(), "ill-typed equality reached the blaster");
                let iffs: Vec<BBit> = ba
                    .into_iter()
                    .zip(bb)
                    .map(|(x, y)| self.bit_iff(x, y))
                    .collect();
                self.big_and(iffs)
            }
            Formula::Not(inner) => match self.blast_formula(decls, inner) {
                BBit::Const(b) => BBit::Const(!b),
                BBit::Lit(l) => BBit::Lit(!l),
            },
            Formula::And(a, b) => {
                let x = self.blast_formula(decls, a);
                let y = self.blast_formula(decls, b);
                self.big_and(vec![x, y])
            }
            Formula::Or(a, b) => {
                let x = self.blast_formula(decls, a);
                let y = self.blast_formula(decls, b);
                let (nx, ny) = (self.negate(x), self.negate(y));
                let n = self.big_and(vec![nx, ny]);
                self.negate(n)
            }
            Formula::Implies(a, b) => {
                let x = self.blast_formula(decls, a);
                let y = self.blast_formula(decls, b);
                let nx = self.negate(x);
                let (nnx, ny) = (self.negate(nx), self.negate(y));
                let n = self.big_and(vec![nnx, ny]);
                self.negate(n)
            }
            Formula::Forall(_, _) => {
                panic!("quantified formula reached the bit-blaster; expand quantifiers first")
            }
        }
    }

    fn negate(&mut self, b: BBit) -> BBit {
        match b {
            BBit::Const(c) => BBit::Const(!c),
            BBit::Lit(l) => BBit::Lit(!l),
        }
    }

    /// Asserts a quantifier-free formula (forces it true).
    ///
    /// Returns `false` if the context became unsatisfiable at the root.
    pub fn assert_formula(&mut self, decls: &Declarations, f: &Formula) -> bool {
        match self.blast_formula(decls, f) {
            BBit::Const(true) => true,
            BBit::Const(false) => {
                let t = self.true_lit();
                self.solver.add_clause(&[!t])
            }
            BBit::Lit(l) => self.solver.add_clause(&[l]),
        }
    }

    /// Solves the asserted constraints; on SAT, extracts a model for all
    /// variables that have been blasted so far (unassigned bits read as 0).
    pub fn solve(&mut self, decls: &Declarations) -> Option<Model> {
        match self.solver.solve(&[]) {
            SolveResult::Unsat => None,
            SolveResult::Sat => {
                let mut m = Model::new();
                for (&v, bits) in &self.var_bits {
                    let mut bv = BitVec::zeros(bits.len());
                    for (i, &l) in bits.iter().enumerate() {
                        if self.solver.lit_value(l) == Some(true) {
                            bv.set(i, true);
                        }
                    }
                    m.set(v, bv);
                }
                // Give every declared-but-unblasted variable a zero value so
                // callers can evaluate any formula over `decls`.
                for v in decls.vars() {
                    if m.get(v).is_none() {
                        m.set(v, BitVec::zeros(decls.width(v)));
                    }
                }
                Some(m)
            }
        }
    }

    /// Number of SAT variables allocated (diagnostics).
    pub fn num_sat_vars(&self) -> usize {
        self.solver.num_vars()
    }
}

/// Convenience: checks satisfiability of a single quantifier-free formula.
pub fn sat_qf(decls: &Declarations, f: &Formula) -> Option<Model> {
    debug_assert!(f.is_quantifier_free());
    let mut ctx = BlastContext::new();
    if !ctx.assert_formula(decls, f) {
        return None;
    }
    ctx.solve(decls)
}

#[allow(unused)]
fn _assert_var_send(_: Var) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn var_equals_literal_model() {
        let mut d = Declarations::new();
        let x = d.declare("x", 5);
        let f = Formula::eq(Term::var(x), Term::lit(bv("10110")));
        let m = sat_qf(&d, &f).expect("sat");
        assert_eq!(m.get(x), Some(&bv("10110")));
    }

    #[test]
    fn contradiction_unsat() {
        let mut d = Declarations::new();
        let x = d.declare("x", 3);
        let f = Formula::and(
            Formula::eq(Term::var(x), Term::lit(bv("101"))),
            Formula::eq(Term::var(x), Term::lit(bv("110"))),
        );
        assert!(sat_qf(&d, &f).is_none());
    }

    #[test]
    fn concat_slice_consistency() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let y = d.declare("y", 4);
        // x ++ y = 10110110  forces x = 1011, y = 0110.
        let f = Formula::eq(
            Term::concat(Term::var(x), Term::var(y)),
            Term::lit(bv("10110110")),
        );
        let m = sat_qf(&d, &f).expect("sat");
        assert_eq!(m.get(x), Some(&bv("1011")));
        assert_eq!(m.get(y), Some(&bv("0110")));
    }

    #[test]
    fn slice_constrains_middle_bits() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        let f = Formula::and(
            Formula::eq(Term::slice(Term::var(x), 2, 4), Term::lit(bv("1111"))),
            Formula::eq(Term::slice(Term::var(x), 0, 2), Term::lit(bv("00"))),
        );
        let m = sat_qf(&d, &f).expect("sat");
        let xv = m.get(x).unwrap();
        assert_eq!(xv.subrange(0, 2), bv("00"));
        assert_eq!(xv.subrange(2, 4), bv("1111"));
    }

    #[test]
    fn implication_and_or_encoding() {
        let mut d = Declarations::new();
        let x = d.declare("x", 1);
        let y = d.declare("y", 1);
        let one = || Term::lit(bv("1"));
        let zero = || Term::lit(bv("0"));
        // (x=1 -> y=1) & x=1 & y=0 is unsat.
        let f = Formula::and(
            Formula::and(
                Formula::implies(
                    Formula::eq(Term::var(x), one()),
                    Formula::eq(Term::var(y), one()),
                ),
                Formula::eq(Term::var(x), one()),
            ),
            Formula::eq(Term::var(y), zero()),
        );
        assert!(sat_qf(&d, &f).is_none());
        // (x=1 | y=1) & x=0 forces y=1.
        let g = Formula::and(
            Formula::or(
                Formula::eq(Term::var(x), one()),
                Formula::eq(Term::var(y), one()),
            ),
            Formula::eq(Term::var(x), zero()),
        );
        let m = sat_qf(&d, &g).expect("sat");
        assert_eq!(m.get(y), Some(&bv("1")));
    }

    #[test]
    fn empty_equality_is_true() {
        let d = Declarations::new();
        let f = Formula::Eq(Term::empty(), Term::empty());
        assert!(sat_qf(&d, &f).is_some());
    }

    #[test]
    fn model_satisfies_formula_randomized() {
        // Random formulas: if the blaster reports SAT, the extracted model
        // must evaluate to true under the reference evaluator.
        let mut state = 0x5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..40 {
            let mut d = Declarations::new();
            let x = d.declare("x", 6);
            let y = d.declare("y", 6);
            let rand_term = |next: &mut dyn FnMut() -> u32| -> Term {
                match next() % 4 {
                    0 => Term::var(x),
                    1 => Term::var(y),
                    2 => {
                        let s = (next() % 4) as usize;
                        Term::slice(Term::var(x), s, 6 - s)
                    }
                    _ => Term::lit(BitVec::from_u64(next() as u64, 6)),
                }
            };
            let mut f = Formula::tt();
            for _ in 0..3 {
                let a = rand_term(&mut next);
                let b = rand_term(&mut next);
                let (wa, wb) = (a.width(&d), b.width(&d));
                let w = wa.min(wb);
                let atom = Formula::eq(Term::slice(a, 0, w), Term::slice(b, 0, w));
                f = if next() % 2 == 0 {
                    Formula::and(f, atom)
                } else {
                    Formula::and(f, Formula::not(atom))
                };
            }
            if let Some(m) = sat_qf(&d, &f) {
                assert!(f.eval(&d, &m), "model does not satisfy formula: {f:?}");
            }
        }
    }

    #[test]
    fn incremental_assertions_accumulate() {
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let mut ctx = BlastContext::new();
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("00")))),
        );
        assert!(ctx.solve(&d).is_some());
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("01")))),
        );
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("10")))),
        );
        let m = ctx.solve(&d).expect("still sat");
        assert_eq!(m.get(x), Some(&bv("11")));
        ctx.assert_formula(
            &d,
            &Formula::not(Formula::eq(Term::var(x), Term::lit(bv("11")))),
        );
        assert!(ctx.solve(&d).is_none());
    }
}
