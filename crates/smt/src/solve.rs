//! Validity and satisfiability checking, including the CEGAR loop for the
//! `∃∀` fragment produced by Leapfrog's entailment queries.
//!
//! An entailment `⋀R ⊨ ψ` lowers to the validity of
//! `∀conf. (⋀ᵢ ∀x⃗ᵢ. ψᵢ) ⇒ ∀y⃗. ψ`, whose negation is an `∃∀` problem:
//! existential configuration variables with universally quantified packet
//! variables in positive positions. We solve it by *counterexample-guided
//! universal expansion*: each `∀`-block is approximated by a finite set of
//! instantiations; candidate models are verified against the true `∀` by a
//! small quantifier-free query, and genuine violations refine the
//! instantiation set. The bitvector domain is finite, so the loop
//! terminates. This plays the role Z3's model-based quantifier
//! instantiation plays in the paper's toolchain.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use leapfrog_bitvec::BitVec;
use std::collections::HashMap;

use crate::blast::{canonical_key, sat_qf_counting, BlastContext, SharedBlastCache};
use crate::smtlib;
use crate::term::{BvVar, Declarations, Formula, Model, Term};
use leapfrog_sat::{PortfolioConfig, PortfolioStats, SolverConfig, SolverStats};

/// Global metric handles for the solving core. Counters mirror the
/// per-query [`QueryStats`] fields but accumulate process-wide, so the
/// daemon can expose live totals without waiting for a run to finish.
mod meters {
    use leapfrog_obs::{LazyCounter, LazyHistogram};

    pub static SMT_QUERIES: LazyCounter = LazyCounter::new("leapfrog_smt_queries_total");
    pub static CEGAR_ROUNDS: LazyCounter = LazyCounter::new("leapfrog_cegar_rounds_total");
    pub static BLAST_CACHE_HITS: LazyCounter = LazyCounter::new("leapfrog_blast_cache_hits_total");
    pub static BLAST_CACHE_MISSES: LazyCounter =
        LazyCounter::new("leapfrog_blast_cache_misses_total");
    pub static INST_LEDGER_HITS: LazyCounter = LazyCounter::new("leapfrog_inst_ledger_hits_total");
    pub static INST_LEDGER_EVICTIONS: LazyCounter =
        LazyCounter::new("leapfrog_inst_ledger_evictions_total");
    pub static SMT_QUERY_SECONDS: LazyHistogram = LazyHistogram::new("leapfrog_smt_query_seconds");
}

/// The outcome of a validity check.
#[derive(Debug, Clone)]
pub enum CheckResult {
    /// The formula holds in all models.
    Valid,
    /// A countermodel was found.
    Invalid(Model),
}

/// The outcome of a satisfiability check.
#[derive(Debug, Clone)]
pub enum SatOutcome {
    /// A model was found.
    Sat(Model),
    /// No model exists.
    Unsat,
}

/// Statistics about queries issued through an [`SmtSolver`].
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Total number of top-level queries.
    pub queries: u64,
    /// Total CEGAR refinement rounds across all queries.
    pub cegar_rounds: u64,
    /// `∀`-blocks a naive per-round sweep would have validated against a
    /// candidate model (Σ live blocks over all rounds).
    pub blocks_considered: u64,
    /// `∀`-blocks actually validated by a quantifier-free solve — the
    /// oracle skips blocks whose support valuation is unchanged since
    /// their last successful validation, so this is ≤ `blocks_considered`.
    pub blocks_validated: u64,
    /// Guard-session context rebuilds triggered by the clause-budget GC.
    pub session_rebuilds: u64,
    /// Peak live-clause count observed in any single solver context.
    pub live_clauses_peak: u64,
    /// Conjuncts whose CNF was replayed from the cross-query blast cache.
    pub blast_cache_hits: u64,
    /// Conjuncts that had to be blasted from scratch (template built).
    pub blast_cache_misses: u64,
    /// `∀`-block validations answered by the cross-session instantiation
    /// ledger instead of a quantifier-free solve (sessions sharing a guard
    /// shape re-encounter the same (block, support valuation) pairs).
    pub inst_ledger_hits: u64,
    /// CDCL solver counters (decisions, propagations, conflicts, restarts,
    /// learnt/deleted clauses, learn-time LBD histogram) summed over every
    /// solver context that served these queries: entailment-session
    /// contexts (across GC rebuilds), one-shot contexts and the
    /// quantifier-free validation solves of the CEGAR oracle.
    pub sat: SolverStats,
    /// SAT portfolio racing counters (race/solo counts, per-lane wins and
    /// per-lane solver work) summed over the same contexts. All zero when
    /// no portfolio is configured; `sat` above always reports only the
    /// canonical lane, so it stays comparable across lane counts.
    pub portfolio: PortfolioStats,
    /// Wall-clock time per query, in the order issued.
    pub durations: Vec<Duration>,
}

impl QueryStats {
    /// Total time across all queries.
    pub fn total_time(&self) -> Duration {
        self.durations.iter().sum()
    }

    /// The fraction of asserted conjuncts served from the blast cache
    /// (0.0 when nothing was asserted).
    pub fn blast_cache_hit_rate(&self) -> f64 {
        let total = self.blast_cache_hits + self.blast_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.blast_cache_hits as f64 / total as f64
    }

    /// Folds another solver's statistics into this one (used to merge
    /// worker-thread solvers into the main run statistics, in a
    /// deterministic order chosen by the caller).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.cegar_rounds += other.cegar_rounds;
        self.blocks_considered += other.blocks_considered;
        self.blocks_validated += other.blocks_validated;
        self.session_rebuilds += other.session_rebuilds;
        self.live_clauses_peak = self.live_clauses_peak.max(other.live_clauses_peak);
        self.blast_cache_hits += other.blast_cache_hits;
        self.blast_cache_misses += other.blast_cache_misses;
        self.inst_ledger_hits += other.inst_ledger_hits;
        self.sat.absorb(&other.sat);
        self.portfolio.absorb(&other.portfolio);
        self.durations.extend(other.durations.iter().copied());
    }

    /// The statistics accumulated since `base` was snapshotted from the
    /// same accumulator: counters subtract, durations keep the suffix, and
    /// `live_clauses_peak` (an all-time maximum) carries over unchanged.
    /// The persistent engine uses this to report per-run numbers from
    /// session pools that stay warm across runs.
    pub fn delta_since(&self, base: &QueryStats) -> QueryStats {
        QueryStats {
            queries: self.queries - base.queries,
            cegar_rounds: self.cegar_rounds - base.cegar_rounds,
            blocks_considered: self.blocks_considered - base.blocks_considered,
            blocks_validated: self.blocks_validated - base.blocks_validated,
            session_rebuilds: self.session_rebuilds - base.session_rebuilds,
            live_clauses_peak: self.live_clauses_peak,
            blast_cache_hits: self.blast_cache_hits - base.blast_cache_hits,
            blast_cache_misses: self.blast_cache_misses - base.blast_cache_misses,
            inst_ledger_hits: self.inst_ledger_hits - base.inst_ledger_hits,
            sat: self.sat.delta_since(&base.sat),
            portfolio: self.portfolio.delta_since(&base.portfolio),
            durations: self.durations[base.durations.len().min(self.durations.len())..].to_vec(),
        }
    }

    /// The maximum single-query time, or zero if no queries ran.
    pub fn max_time(&self) -> Duration {
        self.durations.iter().max().copied().unwrap_or_default()
    }

    /// The fraction of queries that completed within `limit`.
    /// Reproduces the paper's "99% of queries within 5 s" measurement.
    pub fn fraction_within(&self, limit: Duration) -> f64 {
        if self.durations.is_empty() {
            return 1.0;
        }
        let n = self.durations.iter().filter(|d| **d <= limit).count();
        n as f64 / self.durations.len() as f64
    }
}

/// A stateful SMT front-end: runs queries, keeps statistics, shares a
/// cross-query [`SharedBlastCache`], and optionally dumps each query in
/// SMT-LIB 2 format (mirroring the paper's plugin) when the
/// `LEAPFROG_DUMP_SMT` environment variable names a directory.
#[derive(Debug, Default)]
pub struct SmtSolver {
    stats: QueryStats,
    dump_dir: Option<std::path::PathBuf>,
    cache: SharedBlastCache,
}

impl SmtSolver {
    /// Creates a solver, honouring `LEAPFROG_DUMP_SMT`, with a fresh blast
    /// cache.
    pub fn new() -> Self {
        Self::with_shared_cache(SharedBlastCache::new())
    }

    /// Creates a solver that shares an existing blast cache — worker
    /// threads each build one of these around the main solver's cache, so
    /// premise CNF blasted by any worker is reused by all.
    pub fn with_shared_cache(cache: SharedBlastCache) -> Self {
        let dump_dir = std::env::var_os("LEAPFROG_DUMP_SMT").map(std::path::PathBuf::from);
        SmtSolver {
            stats: QueryStats::default(),
            dump_dir,
            cache,
        }
    }

    /// A clonable handle to this solver's blast cache.
    pub fn shared_cache(&self) -> SharedBlastCache {
        self.cache.clone()
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Folds another solver's statistics into this one.
    pub fn absorb_stats(&mut self, other: &QueryStats) {
        self.stats.absorb(other);
    }

    /// Checks validity of `f` (all free variables universally quantified).
    /// `LEAPFROG_NO_BLAST_CACHE=1` (read once, when the solver's shared
    /// cache is constructed) bypasses the cross-query blast cache — an
    /// ablation knob; results are identical either way.
    pub fn check_valid(&mut self, decls: &Declarations, f: &Formula) -> CheckResult {
        let start = Instant::now();
        if let Some(dir) = self.dump_dir.clone() {
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("query_{:05}.smt2", self.stats.queries));
            let _ = std::fs::write(path, smtlib::validity_query(decls, f));
        }
        let (result, meters) = check_valid_counting(decls, f, Some(&self.cache));
        self.stats.queries += 1;
        meters.fold_into(&mut self.stats);
        let elapsed = start.elapsed();
        self.stats.durations.push(elapsed);
        meters::SMT_QUERIES.inc();
        meters::SMT_QUERY_SECONDS.record(elapsed);
        result
    }
}

/// Per-query CEGAR counters threaded out of the solving core.
#[derive(Debug, Clone, Default)]
struct SolveMeters {
    rounds: u64,
    blocks_considered: u64,
    blocks_validated: u64,
    cache_hits: u64,
    cache_misses: u64,
    sat: SolverStats,
    portfolio: PortfolioStats,
}

impl SolveMeters {
    fn fold_into(self, stats: &mut QueryStats) {
        stats.cegar_rounds += self.rounds;
        stats.blocks_considered += self.blocks_considered;
        stats.blocks_validated += self.blocks_validated;
        stats.blast_cache_hits += self.cache_hits;
        stats.blast_cache_misses += self.cache_misses;
        stats.sat.absorb(&self.sat);
        stats.portfolio.absorb(&self.portfolio);
    }
}

/// Checks validity of `f`, treating free variables as universally
/// quantified. Stateless convenience wrapper around [`SmtSolver`] logic
/// (no cross-query cache).
pub fn check_valid(decls: &Declarations, f: &Formula) -> CheckResult {
    check_valid_counting(decls, f, None).0
}

fn check_valid_counting(
    decls: &Declarations,
    f: &Formula,
    cache: Option<&SharedBlastCache>,
) -> (CheckResult, SolveMeters) {
    let (outcome, meters) = check_sat_counting(decls, &Formula::not(f.clone()), cache);
    let result = match outcome {
        SatOutcome::Unsat => CheckResult::Valid,
        SatOutcome::Sat(m) => CheckResult::Invalid(m),
    };
    (result, meters)
}

/// Checks satisfiability of `f` (free variables existential). Supports the
/// `∃∀` fragment: after negation-normalization, `Forall` blocks must have
/// quantifier-free bodies.
pub fn check_sat(decls: &Declarations, f: &Formula) -> SatOutcome {
    check_sat_counting(decls, f, None).0
}

fn check_sat_counting(
    decls: &Declarations,
    f: &Formula,
    cache: Option<&SharedBlastCache>,
) -> (SatOutcome, SolveMeters) {
    let mut decls = decls.clone();
    let nf = nnf(&mut decls, f, true);

    // Split the top-level conjunction into quantifier-free parts and
    // universally quantified blocks.
    let mut qf = Vec::new();
    let mut foralls: Vec<(Vec<BvVar>, Formula)> = Vec::new();
    split_conjuncts(&nf, &mut qf, &mut foralls);

    let mut ctx = BlastContext::new();
    let mut meters = SolveMeters::default();
    let assert =
        |ctx: &mut BlastContext, decls: &Declarations, f: &Formula, m: &mut SolveMeters| -> bool {
            match cache {
                Some(c) => {
                    let (ok, hit) = ctx.assert_formula_cached(decls, f, c);
                    if hit {
                        m.cache_hits += 1;
                        meters::BLAST_CACHE_HITS.inc();
                    } else {
                        m.cache_misses += 1;
                        meters::BLAST_CACHE_MISSES.inc();
                    }
                    ok
                }
                None => ctx.assert_formula(decls, f),
            }
        };
    let mut ok = true;
    for q in &qf {
        ok &= assert(&mut ctx, &decls, q, &mut meters);
    }
    // Seed each forall with the all-zeros instantiation and hand the block
    // to the refinement oracle.
    let mut oracle = RefinementOracle::new();
    for (xs, body) in foralls {
        let seed: Vec<BitVec> = xs.iter().map(|x| BitVec::zeros(decls.width(*x))).collect();
        ok &= assert(
            &mut ctx,
            &decls,
            &instantiate_forall(&body, &xs, &seed),
            &mut meters,
        );
        oracle.add_block(xs, body);
    }
    if !ok {
        meters.sat.absorb(&ctx.solver().stats());
        meters.portfolio.absorb(&ctx.portfolio_stats());
        return (SatOutcome::Unsat, meters);
    }

    loop {
        let _round_span = leapfrog_obs::trace::span(leapfrog_obs::Phase::CegarRound);
        match ctx.solve(&decls) {
            None => {
                meters.sat.absorb(&ctx.solver().stats());
                meters.portfolio.absorb(&ctx.portfolio_stats());
                return (SatOutcome::Unsat, meters);
            }
            Some(model) => {
                meters.rounds += 1;
                meters::CEGAR_ROUNDS.inc();
                meters.blocks_considered += oracle.len() as u64;
                let round = oracle.validate(&decls, &model);
                meters.blocks_validated += round.validated;
                meters.sat.absorb(&round.sat);
                meters.portfolio.absorb(&round.portfolio);
                match round.refinement {
                    None => {
                        meters.sat.absorb(&ctx.solver().stats());
                        meters.portfolio.absorb(&ctx.portfolio_stats());
                        return (SatOutcome::Sat(model), meters);
                    }
                    Some(batch) => {
                        if !assert(&mut ctx, &decls, &batch, &mut meters) {
                            meters.sat.absorb(&ctx.solver().stats());
                            meters.portfolio.absorb(&ctx.portfolio_stats());
                            return (SatOutcome::Unsat, meters);
                        }
                    }
                }
            }
        }
    }
}

/// One `∀x⃗.ψ` block registered with a [`RefinementOracle`], together with
/// its *support*: the free variables the body constrains beyond the bound
/// ones. A candidate model can only change the block's verdict by changing
/// the values of its support.
struct OracleBlock {
    xs: Vec<BvVar>,
    body: Formula,
    /// The support variables, in ascending order.
    support: Vec<BvVar>,
    /// The support valuation under which this block was last *fully*
    /// validated (`violates_forall` returned no witness). Validation of a
    /// pure function of the support valuation never needs repeating, so a
    /// model matching it is skipped outright.
    last_validated: Option<Vec<BitVec>>,
    /// The block's rename-insensitive identity for the cross-session
    /// instantiation ledger, built lazily on first ledger use.
    canon: Option<BlockCanon>,
}

/// A `∀`-block's canonical identity: the body's structural key (shared
/// with the blast cache, so it is insensitive to variable numbering),
/// annotated with which canonical variable positions are bound, plus the
/// position maps needed to translate valuations and witnesses between this
/// block's [`BvVar`] numbering and the canonical order.
struct BlockCanon {
    /// Structural body key + bound-position markers — two blocks share it
    /// iff they are the same block up to a width-preserving renaming.
    key: String,
    /// Canonical positions (into the body's first-occurrence variable
    /// list) that are support variables, paired with the session-local
    /// variable at that position.
    support_slots: Vec<BvVar>,
    /// For each bound variable in `xs` order: its index into the canonical
    /// bound-variable list, or `None` when it does not occur in the body
    /// (its witness value is always all-zeros).
    xs_to_bound: Vec<Option<usize>>,
}

impl BlockCanon {
    fn build(decls: &Declarations, xs: &[BvVar], body: &Formula) -> BlockCanon {
        let mut vars = Vec::new();
        let mut key = canonical_key(decls, body, &mut vars);
        let mut support_slots = Vec::new();
        let mut bound_order = Vec::new();
        key.push_str("|B");
        for (i, v) in vars.iter().enumerate() {
            if xs.contains(v) {
                key.push_str(&i.to_string());
                key.push(',');
                bound_order.push(*v);
            } else {
                support_slots.push(*v);
            }
        }
        let xs_to_bound = xs
            .iter()
            .map(|x| bound_order.iter().position(|b| b == x))
            .collect();
        BlockCanon {
            key,
            support_slots,
            xs_to_bound,
        }
    }
}

/// A cross-session memo of `∀`-block validations, keyed by the block's
/// canonical (rename-insensitive) identity and the support valuation in
/// canonical variable order. Validation is a pure function of that pair,
/// and blocks lowered by different sessions sharing a guard shape are
/// structurally identical, so a verdict computed in one session — clean,
/// or violated with concrete witness values for the bound variables —
/// transfers exactly to every other. The engine owns one ledger for its
/// whole lifetime and threads it through every guard session (main loop
/// and worker slots alike). Verdicts are deterministic replays of what a
/// fresh solve would produce, so the ledger changes wall-clock only, never
/// results.
/// A ledger key: canonical block identity plus the support valuation in
/// canonical variable order.
type LedgerKey = (String, Vec<BitVec>);
/// A recorded verdict: `None` = the block validated clean, `Some(w)` =
/// violated with witness values `w` for the bound variables in canonical
/// order.
type LedgerVerdict = Option<Vec<BitVec>>;

#[derive(Debug, Default)]
struct LedgerInner {
    /// Verdict plus the recency tick of the entry's last touch.
    map: HashMap<LedgerKey, (LedgerVerdict, u64)>,
    /// Recency index: tick → key, kept in lockstep with `map` so the
    /// least-recently-used entry is always the first tick.
    recency: std::collections::BTreeMap<u64, LedgerKey>,
    tick: u64,
    /// Maximum entries retained (`0` = unbounded).
    capacity: usize,
    evictions: u64,
}

impl LedgerInner {
    fn touch(&mut self, key: &LedgerKey) -> Option<LedgerVerdict> {
        // Unbounded ledgers (the default) skip the recency bookkeeping:
        // it is never consulted, and hits are the hot path of warm runs.
        if self.capacity == 0 {
            return self.map.get(key).map(|(v, _)| v.clone());
        }
        let (verdict, old_tick) = self.map.get(key)?.clone();
        self.recency.remove(&old_tick);
        self.tick += 1;
        self.recency.insert(self.tick, key.clone());
        self.map.get_mut(key).unwrap().1 = self.tick;
        Some(verdict)
    }

    fn insert(&mut self, key: LedgerKey, verdict: LedgerVerdict) {
        if self.capacity == 0 {
            self.map.insert(key, (verdict, 0));
            return;
        }
        if let Some((_, old_tick)) = self.map.get(&key) {
            self.recency.remove(&old_tick.clone());
        }
        self.tick += 1;
        self.recency.insert(self.tick, key.clone());
        self.map.insert(key, (verdict, self.tick));
        while self.map.len() > self.capacity {
            let (_, victim) = self.recency.pop_first().expect("recency tracks map");
            self.map.remove(&victim);
            self.evictions += 1;
            meters::INST_LEDGER_EVICTIONS.inc();
        }
    }
}

#[derive(Debug, Clone, Default)]
pub struct InstLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl InstLedger {
    /// An empty, unbounded ledger.
    pub fn new() -> InstLedger {
        InstLedger::default()
    }

    /// An empty ledger that retains at most `capacity` verdicts, evicting
    /// the least-recently-used entry beyond that (`0` = unbounded). A
    /// verdict is a deterministic replay of what a fresh solve would
    /// produce, so eviction changes wall-clock only, never results.
    pub fn with_capacity(capacity: usize) -> InstLedger {
        let ledger = InstLedger::new();
        ledger.inner.lock().unwrap().capacity = capacity;
        ledger
    }

    /// Number of recorded (block, valuation) verdicts.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether no verdicts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the LRU capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    fn get(&self, key: &LedgerKey) -> Option<LedgerVerdict> {
        self.inner.lock().unwrap().touch(key)
    }

    fn put(&self, key: LedgerKey, verdict: LedgerVerdict) {
        self.inner.lock().unwrap().insert(key, verdict);
    }

    /// Serializes every recorded verdict to a line-based text format
    /// (`e <key> <valuation> <verdict>`), sorted for determinism. Bit
    /// values are written as `b<bits>` tokens so empty vectors survive.
    pub fn export_text(&self) -> String {
        fn bits(vals: &[BitVec]) -> String {
            if vals.is_empty() {
                return "-".to_string();
            }
            vals.iter()
                .map(|v| format!("b{v}"))
                .collect::<Vec<_>>()
                .join(",")
        }
        let inner = self.inner.lock().unwrap();
        let mut lines: Vec<String> = inner
            .map
            .iter()
            .map(|((key, valuation), (verdict, _))| {
                let verdict = match verdict {
                    None => "clean".to_string(),
                    Some(w) => format!("viol:{}", bits(w)),
                };
                format!("e {key} {} {verdict}", bits(valuation))
            })
            .collect();
        lines.sort();
        let mut out = String::from("# leapfrog-inst-ledger v1\n");
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Loads verdicts from [`InstLedger::export_text`] output, merging
    /// into the current contents. Returns the number of entries read.
    pub fn import_text(&self, text: &str) -> Result<usize, String> {
        fn parse_bits(tok: &str, line_no: usize) -> Result<Vec<BitVec>, String> {
            if tok == "-" {
                return Ok(Vec::new());
            }
            tok.split(',')
                .map(|t| {
                    t.strip_prefix('b')
                        .ok_or_else(|| format!("line {line_no}: bit token missing 'b' prefix"))?
                        .parse()
                        .map_err(|e| format!("line {line_no}: bad bits: {e}"))
                })
                .collect()
        }
        let mut read = 0;
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix("e ")
                .ok_or_else(|| format!("line {line_no}: unrecognized ledger line"))?;
            let mut parts = rest.rsplitn(3, ' ');
            let verdict_tok = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: missing verdict"))?;
            let valuation_tok = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: missing valuation"))?;
            let key = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: missing key"))?
                .to_string();
            let valuation = parse_bits(valuation_tok, line_no)?;
            let verdict = match verdict_tok {
                "clean" => None,
                v => Some(parse_bits(
                    v.strip_prefix("viol:")
                        .ok_or_else(|| format!("line {line_no}: unknown verdict {v:?}"))?,
                    line_no,
                )?),
            };
            self.put((key, valuation), verdict);
            read += 1;
        }
        Ok(read)
    }
}

/// What one [`RefinementOracle::validate`] round observed.
#[derive(Debug, Clone, Default)]
pub struct OracleRound {
    /// The batched conjunction of every violated block's refuting
    /// instantiation, `None` when the model survives all blocks. Callers
    /// assert it in *one* round-trip instead of once per violated block.
    pub refinement: Option<Formula>,
    /// Blocks validated by an actual quantifier-free solve this round.
    pub validated: u64,
    /// Blocks skipped because their support valuation was unchanged since
    /// their last successful validation.
    pub skipped: u64,
    /// Blocks whose verdict (clean, or violated with a recorded witness)
    /// was replayed from the cross-session [`InstLedger`] without a solve.
    pub ledger_hits: u64,
    /// CDCL counters of the quantifier-free validation solves this round
    /// (each validation runs in its own short-lived solver context).
    pub sat: SolverStats,
    /// Portfolio racing counters of the same validation solves — in
    /// practice all-solo, since validation contexts sit far below the
    /// racing floor.
    pub portfolio: PortfolioStats,
}

/// The variable-indexed CEGAR model validator.
///
/// Per-round model validation (`violates_forall`, one quantifier-free SAT
/// query per `∀`-block per candidate model) dominates solver time on large
/// entailments. The oracle cuts that cost two ways:
///
/// * **Variable indexing** — each block records its support (the free
///   variables its body constrains). Validation is a pure function of the
///   support valuation, so a block whose support is unchanged since its
///   last successful validation is skipped without a solve. Incremental
///   guard sessions keep one oracle alive across queries, so a premise
///   validated once under a recurring store/buffer valuation is never
///   re-validated.
/// * **Batched refinement** — all violated blocks of a round contribute
///   their instantiation to a single conjunction asserted in one
///   round-trip, instead of one assert per block.
///
/// Verdicts are exact: a model is reported clean only after every block
/// either solved clean or matched a previously-clean support valuation.
pub struct RefinementOracle {
    blocks: Vec<OracleBlock>,
    /// Construction knobs for the short-lived validation solvers.
    sat_cfg: PortfolioConfig,
}

impl Default for RefinementOracle {
    fn default() -> RefinementOracle {
        RefinementOracle::new()
    }
}

impl RefinementOracle {
    /// An oracle with no blocks; validation solvers configured from the
    /// `LEAPFROG_SAT_*` environment.
    pub fn new() -> RefinementOracle {
        RefinementOracle::with_portfolio(PortfolioConfig::from_env())
    }

    /// An oracle with no blocks whose validation solves run under an
    /// explicit single-lane solver configuration.
    pub fn with_solver_config(sat_cfg: SolverConfig) -> RefinementOracle {
        RefinementOracle::with_portfolio(PortfolioConfig::single(sat_cfg))
    }

    /// An oracle with no blocks whose validation solves run under an
    /// explicit solver portfolio (the typed path guard sessions use).
    pub fn with_portfolio(sat_cfg: PortfolioConfig) -> RefinementOracle {
        RefinementOracle {
            blocks: Vec::new(),
            sat_cfg,
        }
    }

    /// Registers a `∀xs. body` block. The caller is responsible for
    /// asserting a seed instantiation into its own context.
    pub fn add_block(&mut self, xs: Vec<BvVar>, body: Formula) {
        let support: Vec<BvVar> = body
            .free_vars()
            .into_iter()
            .filter(|v| !xs.contains(v))
            .collect();
        self.blocks.push(OracleBlock {
            xs,
            body,
            support,
            last_validated: None,
            canon: None,
        });
    }

    /// Number of registered blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks are registered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Validates a candidate model against every block, skipping blocks
    /// whose support valuation matches their last successful validation,
    /// and batching all violated blocks' instantiations into one formula.
    pub fn validate(&mut self, decls: &Declarations, model: &Model) -> OracleRound {
        self.validate_with(decls, model, None)
    }

    /// [`RefinementOracle::validate`] with an optional cross-session
    /// [`InstLedger`]: a block whose canonical (identity, support
    /// valuation) pair is already recorded replays the recorded verdict —
    /// clean, or violated with the recorded witness values — instead of
    /// solving; a freshly solved block records its verdict for every other
    /// session. Verdicts and witnesses are identical either way (the solve
    /// is a deterministic function of the canonical pair), so the ledger
    /// affects wall-clock only.
    pub fn validate_with(
        &mut self,
        decls: &Declarations,
        model: &Model,
        ledger: Option<&InstLedger>,
    ) -> OracleRound {
        let mut round = OracleRound::default();
        let mut insts = Vec::new();
        for block in &mut self.blocks {
            let valuation: Vec<BitVec> = block
                .support
                .iter()
                .map(|v| {
                    model
                        .get(*v)
                        .cloned()
                        .unwrap_or_else(|| BitVec::zeros(decls.width(*v)))
                })
                .collect();
            if block.last_validated.as_ref() == Some(&valuation) {
                round.skipped += 1;
                continue;
            }
            let lkey = ledger.map(|_| {
                let canon = block
                    .canon
                    .get_or_insert_with(|| BlockCanon::build(decls, &block.xs, &block.body));
                let canon_valuation: Vec<BitVec> = canon
                    .support_slots
                    .iter()
                    .map(|v| {
                        model
                            .get(*v)
                            .cloned()
                            .unwrap_or_else(|| BitVec::zeros(decls.width(*v)))
                    })
                    .collect();
                (canon.key.clone(), canon_valuation)
            });
            if let (Some(ledger), Some(lkey)) = (ledger, &lkey) {
                if let Some(verdict) = ledger.get(lkey) {
                    round.ledger_hits += 1;
                    meters::INST_LEDGER_HITS.inc();
                    match verdict {
                        Some(canon_witness) => {
                            let canon = block.canon.as_ref().unwrap();
                            let witness: Vec<BitVec> = block
                                .xs
                                .iter()
                                .zip(&canon.xs_to_bound)
                                .map(|(x, slot)| match slot {
                                    Some(i) => canon_witness[*i].clone(),
                                    None => BitVec::zeros(decls.width(*x)),
                                })
                                .collect();
                            insts.push(instantiate_forall(&block.body, &block.xs, &witness));
                            block.last_validated = None;
                        }
                        None => block.last_validated = Some(valuation),
                    }
                    continue;
                }
            }
            round.validated += 1;
            let map: HashMap<BvVar, Term> = block
                .support
                .iter()
                .zip(&valuation)
                .map(|(v, val)| (*v, Term::lit(val.clone())))
                .collect();
            match refute_closed(
                decls,
                &self.sat_cfg,
                &block.xs,
                &block.body,
                &map,
                &mut round.sat,
                &mut round.portfolio,
            ) {
                Some(witness) => {
                    if let (Some(ledger), Some(lkey)) = (ledger, lkey) {
                        let canon = block.canon.as_ref().unwrap();
                        let n_bound = canon.xs_to_bound.iter().flatten().count();
                        let mut canon_witness = vec![BitVec::zeros(0); n_bound];
                        for (w, slot) in witness.iter().zip(&canon.xs_to_bound) {
                            if let Some(i) = slot {
                                canon_witness[*i] = w.clone();
                            }
                        }
                        ledger.put(lkey, Some(canon_witness));
                    }
                    insts.push(instantiate_forall(&block.body, &block.xs, &witness));
                    block.last_validated = None;
                }
                None => {
                    if let (Some(ledger), Some(lkey)) = (ledger, lkey) {
                        ledger.put(lkey, None);
                    }
                    block.last_validated = Some(valuation);
                }
            }
        }
        round.refinement = if insts.is_empty() {
            None
        } else {
            Some(Formula::and_all(insts))
        };
        round
    }
}

/// If `model` violates `∀xs. body`, returns witness values for `xs`.
/// The stateless building block of [`RefinementOracle::validate`] (which
/// adds support indexing and caching on top of the same core), kept
/// public for one-off checks.
pub fn violates_forall(
    decls: &Declarations,
    model: &Model,
    xs: &[BvVar],
    body: &Formula,
) -> Option<Vec<BitVec>> {
    // Substitute every free variable except the bound ones by its model
    // value, then look for xs making the body false.
    let mut map = HashMap::new();
    for v in body.free_vars() {
        if !xs.contains(&v) {
            let value = model
                .get(v)
                .cloned()
                .unwrap_or_else(|| BitVec::zeros(decls.width(v)));
            map.insert(v, Term::lit(value));
        }
    }
    refute_closed(
        decls,
        &PortfolioConfig::from_env(),
        xs,
        body,
        &map,
        &mut SolverStats::default(),
        &mut PortfolioStats::default(),
    )
}

/// Closes `body`'s support variables with `map` and searches for values
/// of `xs` falsifying the closed body — the shared core of
/// [`violates_forall`] and [`RefinementOracle::validate`].
#[allow(clippy::too_many_arguments)]
fn refute_closed(
    decls: &Declarations,
    sat_cfg: &PortfolioConfig,
    xs: &[BvVar],
    body: &Formula,
    map: &HashMap<BvVar, Term>,
    sat: &mut SolverStats,
    portfolio: &mut PortfolioStats,
) -> Option<Vec<BitVec>> {
    let closed = Formula::not(body.subst(map));
    let (m, solve_stats, portfolio_stats) = sat_qf_counting(decls, sat_cfg, &closed);
    sat.absorb(&solve_stats);
    portfolio.absorb(&portfolio_stats);
    let m = m?;
    Some(
        xs.iter()
            .map(|x| {
                m.get(*x)
                    .cloned()
                    .unwrap_or_else(|| BitVec::zeros(decls.width(*x)))
            })
            .collect(),
    )
}

/// Substitutes concrete values for the bound variables of a forall body.
pub fn instantiate_forall(body: &Formula, xs: &[BvVar], values: &[BitVec]) -> Formula {
    let map: HashMap<BvVar, Term> = xs
        .iter()
        .zip(values)
        .map(|(x, v)| (*x, Term::lit(v.clone())))
        .collect();
    body.subst(&map)
}

/// Flattens top-level conjunction into QF conjuncts and forall blocks.
///
/// # Panics
///
/// Panics if a quantifier occurs in an unsupported position (not a
/// top-level conjunct, or with a quantified body). Leapfrog's lowering
/// never produces such formulas.
fn split_conjuncts(f: &Formula, qf: &mut Vec<Formula>, foralls: &mut Vec<(Vec<BvVar>, Formula)>) {
    match f {
        Formula::And(a, b) => {
            split_conjuncts(a, qf, foralls);
            split_conjuncts(b, qf, foralls);
        }
        Formula::Forall(xs, body) => {
            assert!(
                body.is_quantifier_free(),
                "nested quantifiers are outside the supported fragment"
            );
            foralls.push((xs.clone(), (**body).clone()));
        }
        other => {
            assert!(
                other.is_quantifier_free(),
                "quantifier in unsupported position: {other:?}"
            );
            qf.push(other.clone());
        }
    }
}

/// Negation normal form with polarity tracking. Positive `Forall`s are
/// kept; negative ones are skolemized by replacing their bound variables
/// with fresh free variables (sound because no `∀` encloses them in our
/// fragment).
fn nnf(decls: &mut Declarations, f: &Formula, positive: bool) -> Formula {
    match f {
        Formula::Const(b) => Formula::Const(*b == positive),
        Formula::Eq(_, _) => {
            if positive {
                f.clone()
            } else {
                Formula::Not(std::sync::Arc::new(f.clone()))
            }
        }
        Formula::Not(g) => nnf(decls, g, !positive),
        Formula::And(a, b) => {
            let (na, nb) = (nnf(decls, a, positive), nnf(decls, b, positive));
            if positive {
                Formula::and(na, nb)
            } else {
                Formula::or(na, nb)
            }
        }
        Formula::Or(a, b) => {
            let (na, nb) = (nnf(decls, a, positive), nnf(decls, b, positive));
            if positive {
                Formula::or(na, nb)
            } else {
                Formula::and(na, nb)
            }
        }
        Formula::Implies(a, b) => {
            if positive {
                Formula::or(nnf(decls, a, false), nnf(decls, b, true))
            } else {
                Formula::and(nnf(decls, a, true), nnf(decls, b, false))
            }
        }
        Formula::Forall(xs, body) => {
            if positive {
                Formula::forall(xs.clone(), nnf(decls, body, true))
            } else {
                // ¬∀x.body ≡ ∃x.¬body; skolemize with fresh free variables.
                let mut map = HashMap::new();
                for x in xs {
                    let w = decls.width(*x);
                    let name = format!("{}!sk{}", decls.name(*x), decls.len());
                    let fresh = decls.declare(name, w);
                    map.insert(*x, Term::var(fresh));
                }
                nnf(decls, &body.subst(&map), false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn qf_validity() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        // x = x is valid.
        let f = Formula::Eq(Term::var(x), Term::var(x));
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
        // x = 0 is invalid, countermodel has x != 0.
        let g = Formula::Eq(Term::var(x), Term::lit(bv("0000")));
        match check_valid(&d, &g) {
            CheckResult::Invalid(m) => assert_ne!(m.get(x), Some(&bv("0000"))),
            CheckResult::Valid => panic!("x = 0 should not be valid"),
        }
    }

    #[test]
    fn slices_cover_concat_validity() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        // (x[0:4) ++ x[4:4)) = x is valid.
        let f = Formula::Eq(
            Term::concat(
                Term::slice(Term::var(x), 0, 4),
                Term::slice(Term::var(x), 4, 4),
            ),
            Term::var(x),
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn forall_premise_entailment_valid() {
        // (∀x. a = x ++ x[0:0)) … simpler: (∀x. a[0:1) = x[0:1) ⇒ …) is
        // awkward; use: (∀x. x = a) ⇒ a = b is NOT generally checkable…
        // Test the canonical shape instead:
        // (∀x. a ++ x = b ++ x)  ⇒  a = b        — valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn forall_premise_entailment_invalid() {
        // (∀x. x = x) ⇒ a = b  — invalid (premise trivial).
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::var(x)));
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        match check_valid(&d, &f) {
            CheckResult::Invalid(m) => {
                assert_ne!(m.get(a), m.get(b));
            }
            CheckResult::Valid => panic!("should be invalid"),
        }
    }

    #[test]
    fn forall_conclusion_validity() {
        // a = 11 ⇒ ∀x. (a ++ x)[0:2) = 11   — valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let x = d.declare("x", 3);
        let f = Formula::implies(
            Formula::Eq(Term::var(a), Term::lit(bv("11"))),
            Formula::forall(
                vec![x],
                Formula::eq(
                    Term::slice(Term::concat(Term::var(a), Term::var(x)), 0, 2),
                    Term::lit(bv("11")),
                ),
            ),
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn forall_conclusion_invalid_needs_skolem() {
        // ∀x. x = 00 is invalid; negation must skolemize.
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let f = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::lit(bv("00"))));
        assert!(matches!(check_valid(&d, &f), CheckResult::Invalid(_)));
    }

    #[test]
    fn unsat_premise_makes_entailment_valid() {
        // (∀x. x = 10) ⇒ anything  — the premise is unsatisfiable (x is
        // universally quantified), so the implication is valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::lit(bv("10"))));
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn multiple_forall_premises() {
        // (∀x. a ++ x = b ++ x) ∧ (∀y. b ++ y = c ++ y) ⇒ a = c — valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let b = d.declare("b", 2);
        let c = d.declare("c", 2);
        let x = d.declare("x", 1);
        let y = d.declare("y", 1);
        let p1 = Formula::forall(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        let p2 = Formula::forall(
            vec![y],
            Formula::Eq(
                Term::concat(Term::var(b), Term::var(y)),
                Term::concat(Term::var(c), Term::var(y)),
            ),
        );
        let f = Formula::implies(
            Formula::and(p1, p2),
            Formula::Eq(Term::var(a), Term::var(c)),
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn differential_small_widths_against_enumeration() {
        // Random ∃∀ formulas over tiny widths: compare the CEGAR solver
        // against brute-force enumeration through `Formula::eval`.
        let mut state = 0xabcdefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..30 {
            let mut d = Declarations::new();
            let a = d.declare("a", 2);
            let x = d.declare("x", 2);
            let rand_term = |next: &mut dyn FnMut() -> u32, v: BvVar| -> Term {
                match next() % 3 {
                    0 => Term::var(v),
                    1 => Term::lit(BitVec::from_u64(next() as u64 & 3, 2)),
                    _ => Term::concat(
                        Term::slice(Term::var(v), 1, 1),
                        Term::slice(Term::var(v), 0, 1),
                    ),
                }
            };
            let body = Formula::or(
                Formula::eq(rand_term(&mut next, a), rand_term(&mut next, x)),
                Formula::not(Formula::eq(
                    rand_term(&mut next, x),
                    rand_term(&mut next, x),
                )),
            );
            let f = Formula::implies(
                Formula::forall(vec![x], body.clone()),
                Formula::eq(
                    rand_term(&mut next, a),
                    Term::lit(BitVec::from_u64(next() as u64 & 3, 2)),
                ),
            );
            // Brute-force validity: enumerate a.
            let mut brute_valid = true;
            for av in 0..4u64 {
                let mut m = Model::new();
                m.set(a, BitVec::from_u64(av, 2));
                m.set(x, BitVec::zeros(2));
                if !f.eval(&d, &m) {
                    brute_valid = false;
                    break;
                }
            }
            let got = matches!(check_valid(&d, &f), CheckResult::Valid);
            assert_eq!(got, brute_valid, "round {round}: disagreement on {f:?}");
        }
    }

    #[test]
    fn oracle_skips_blocks_with_unchanged_support() {
        // ∀x. a ++ x = a ++ x constrains only `a`; once validated under a
        // valuation of `a`, the same valuation must be skipped, and a new
        // valuation must be re-validated.
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let x = d.declare("x", 2);
        let body = Formula::Eq(
            Term::concat(Term::var(a), Term::var(x)),
            Term::concat(Term::var(a), Term::var(x)),
        );
        let mut oracle = RefinementOracle::new();
        oracle.add_block(vec![x], body);
        assert_eq!(oracle.len(), 1);
        let mut m = Model::new();
        m.set(a, bv("01"));
        let r1 = oracle.validate(&d, &m);
        assert!(r1.refinement.is_none());
        assert_eq!((r1.validated, r1.skipped), (1, 0));
        let r2 = oracle.validate(&d, &m);
        assert!(r2.refinement.is_none());
        assert_eq!((r2.validated, r2.skipped), (0, 1), "unchanged support");
        m.set(a, bv("10"));
        let r3 = oracle.validate(&d, &m);
        assert_eq!((r3.validated, r3.skipped), (1, 0), "changed support");
    }

    #[test]
    fn oracle_batches_violations_and_revalidates_violated_blocks() {
        // Two violated blocks in one round must yield a single batched
        // refinement; a violated block is re-validated even when its
        // support is unchanged (one witness does not exhaust violations).
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let b = d.declare("b", 2);
        let x = d.declare("x", 2);
        let y = d.declare("y", 2);
        let mut oracle = RefinementOracle::new();
        // ∀x. x = a  and  ∀y. y = b: violated for every valuation.
        oracle.add_block(vec![x], Formula::Eq(Term::var(x), Term::var(a)));
        oracle.add_block(vec![y], Formula::Eq(Term::var(y), Term::var(b)));
        let mut m = Model::new();
        m.set(a, bv("00"));
        m.set(b, bv("11"));
        let r1 = oracle.validate(&d, &m);
        let batch = r1.refinement.expect("both blocks are violated");
        assert_eq!(r1.validated, 2);
        assert!(matches!(batch, Formula::And(_, _)), "{batch:?}");
        // Same model again: violated blocks must not be memoized as clean.
        let r2 = oracle.validate(&d, &m);
        assert!(r2.refinement.is_some());
        assert_eq!((r2.validated, r2.skipped), (2, 0));
    }

    #[test]
    fn inst_ledger_replays_verdicts_across_renamed_oracles() {
        // Two oracles over alpha-renamed copies of the same blocks (the
        // cross-session scenario): the second oracle's validations must
        // replay from the shared ledger — same refinements, no solves —
        // and agree with a ledger-free oracle.
        let ledger = InstLedger::new();
        let build = |names: [&str; 3]| {
            let mut d = Declarations::new();
            let a = d.declare(names[0], 2);
            let b = d.declare(names[1], 2);
            let x = d.declare(names[2], 2);
            let mut oracle = RefinementOracle::new();
            // Clean block: ∀x. a ++ x = a ++ x. Violated block: ∀x. x = b.
            oracle.add_block(
                vec![x],
                Formula::Eq(
                    Term::concat(Term::var(a), Term::var(x)),
                    Term::concat(Term::var(a), Term::var(x)),
                ),
            );
            oracle.add_block(vec![x], Formula::Eq(Term::var(x), Term::var(b)));
            let mut m = Model::new();
            m.set(a, bv("01"));
            m.set(b, bv("10"));
            (d, oracle, m)
        };
        let (d1, mut o1, m1) = build(["a", "b", "x"]);
        let r1 = o1.validate_with(&d1, &m1, Some(&ledger));
        assert_eq!(r1.ledger_hits, 0, "first oracle must solve: {r1:?}");
        assert_eq!(r1.validated, 2);
        let refinement1 = format!("{:?}", r1.refinement.expect("one violated block"));

        let (d2, mut o2, m2) = build(["p", "q", "y"]);
        let r2 = o2.validate_with(&d2, &m2, Some(&ledger));
        assert_eq!(
            r2.ledger_hits, 2,
            "renamed blocks must replay from the ledger: {r2:?}"
        );
        assert_eq!(r2.validated, 0);
        let refinement2 = format!("{:?}", r2.refinement.expect("same violated block"));
        // The replayed refutation instantiates the renamed body with the
        // *same* witness values the fresh solve found.
        let (d3, mut o3, m3) = build(["p", "q", "y"]);
        let r3 = o3.validate_with(&d3, &m3, None);
        assert_eq!(
            refinement2,
            format!("{:?}", r3.refinement.expect("fresh solve agrees")),
        );
        assert_ne!(refinement1, String::new());
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn inst_ledger_export_import_round_trips() {
        // Record verdicts through a real oracle, round-trip the ledger
        // through text, and replay the renamed oracle from the import.
        let ledger = InstLedger::new();
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let b = d.declare("b", 2);
        let x = d.declare("x", 2);
        let mut oracle = RefinementOracle::new();
        oracle.add_block(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        oracle.add_block(vec![x], Formula::Eq(Term::var(x), Term::var(b)));
        let mut m = Model::new();
        m.set(a, bv("01"));
        m.set(b, bv("01"));
        let r = oracle.validate_with(&d, &m, Some(&ledger));
        assert_eq!(r.validated, 2);
        let text = ledger.export_text();

        let reloaded = InstLedger::new();
        assert_eq!(reloaded.import_text(&text), Ok(ledger.len()));
        assert_eq!(reloaded.export_text(), text, "round trip is stable");
        let mut oracle2 = RefinementOracle::new();
        oracle2.add_block(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        oracle2.add_block(vec![x], Formula::Eq(Term::var(x), Term::var(b)));
        let r2 = oracle2.validate_with(&d, &m, Some(&reloaded));
        assert_eq!(r2.validated, 0, "imported verdicts must replay: {r2:?}");
        assert_eq!(r2.ledger_hits, 2);
        assert_eq!(
            format!("{:?}", r.refinement),
            format!("{:?}", r2.refinement),
            "replayed refinements must match the fresh solve"
        );
    }

    #[test]
    fn inst_ledger_capacity_evicts_lru() {
        let ledger = InstLedger::with_capacity(2);
        let key = |i: usize| (format!("k{i}"), vec![bv("01")]);
        ledger.put(key(0), None);
        ledger.put(key(1), Some(vec![bv("10")]));
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.evictions(), 0);
        // Touch k0 so k1 becomes the LRU victim.
        assert!(ledger.get(&key(0)).is_some());
        ledger.put(key(2), None);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.evictions(), 1);
        assert!(ledger.get(&key(1)).is_none(), "k1 was evicted");
        assert!(ledger.get(&key(0)).is_some());
        assert!(ledger.get(&key(2)).is_some());
        // Unbounded ledgers never evict.
        let unbounded = InstLedger::new();
        for i in 0..64 {
            unbounded.put(key(i), None);
        }
        assert_eq!(unbounded.len(), 64);
        assert_eq!(unbounded.evictions(), 0);
    }

    #[test]
    fn validation_counters_reported_through_solver_stats() {
        // (∀x. x = x) ⇒ a = b is invalid: the CEGAR loop finds a model
        // and must validate the (trivially true) block against it.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::var(x)));
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        let mut s = SmtSolver::new();
        assert!(matches!(s.check_valid(&d, &f), CheckResult::Invalid(_)));
        let stats = s.stats();
        assert!(stats.cegar_rounds > 0, "{stats:?}");
        assert!(stats.blocks_validated > 0, "{stats:?}");
        assert!(
            stats.blocks_validated <= stats.blocks_considered,
            "{stats:?}"
        );
    }

    #[test]
    fn solver_stats_accumulate() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let mut s = SmtSolver {
            stats: QueryStats::default(),
            dump_dir: None,
            cache: SharedBlastCache::new(),
        };
        s.check_valid(&d, &Formula::Eq(Term::var(x), Term::var(x)));
        s.check_valid(&d, &Formula::Eq(Term::var(x), Term::lit(bv("0000"))));
        assert_eq!(s.stats().queries, 2);
        assert_eq!(s.stats().durations.len(), 2);
        assert!(s.stats().fraction_within(Duration::from_secs(5)) > 0.99);
    }

    #[test]
    fn repeated_queries_hit_the_blast_cache() {
        // The same premise conjunct across successive queries must be
        // served from the cache after the first blast, with identical
        // verdicts throughout.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        let mut s = SmtSolver::new();
        for _ in 0..4 {
            assert!(matches!(s.check_valid(&d, &f), CheckResult::Valid));
        }
        if s.shared_cache().is_disabled() {
            return; // LEAPFROG_NO_BLAST_CACHE=1 ablation run: no hits.
        }
        let stats = s.stats().clone();
        assert!(stats.blast_cache_hits > 0, "{stats:?}");
        assert!(stats.blast_cache_misses > 0, "{stats:?}");
        assert!(stats.blast_cache_hit_rate() > 0.5, "{stats:?}");
    }

    #[test]
    fn shared_cache_is_shared_between_solvers() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let f = Formula::Eq(Term::var(x), Term::lit(bv("1010")));
        let mut s1 = SmtSolver::new();
        assert!(matches!(s1.check_valid(&d, &f), CheckResult::Invalid(_)));
        let mut s2 = SmtSolver::with_shared_cache(s1.shared_cache());
        assert!(matches!(s2.check_valid(&d, &f), CheckResult::Invalid(_)));
        if s2.shared_cache().is_disabled() {
            return; // LEAPFROG_NO_BLAST_CACHE=1 ablation run: no hits.
        }
        assert_eq!(s2.stats().blast_cache_misses, 0, "{:?}", s2.stats());
        assert!(s2.stats().blast_cache_hits > 0);
    }
}
