//! Validity and satisfiability checking, including the CEGAR loop for the
//! `∃∀` fragment produced by Leapfrog's entailment queries.
//!
//! An entailment `⋀R ⊨ ψ` lowers to the validity of
//! `∀conf. (⋀ᵢ ∀x⃗ᵢ. ψᵢ) ⇒ ∀y⃗. ψ`, whose negation is an `∃∀` problem:
//! existential configuration variables with universally quantified packet
//! variables in positive positions. We solve it by *counterexample-guided
//! universal expansion*: each `∀`-block is approximated by a finite set of
//! instantiations; candidate models are verified against the true `∀` by a
//! small quantifier-free query, and genuine violations refine the
//! instantiation set. The bitvector domain is finite, so the loop
//! terminates. This plays the role Z3's model-based quantifier
//! instantiation plays in the paper's toolchain.

use std::time::{Duration, Instant};

use leapfrog_bitvec::BitVec;
use std::collections::HashMap;

use crate::blast::{sat_qf, BlastContext, SharedBlastCache};
use crate::smtlib;
use crate::term::{BvVar, Declarations, Formula, Model, Term};

/// The outcome of a validity check.
#[derive(Debug, Clone)]
pub enum CheckResult {
    /// The formula holds in all models.
    Valid,
    /// A countermodel was found.
    Invalid(Model),
}

/// The outcome of a satisfiability check.
#[derive(Debug, Clone)]
pub enum SatOutcome {
    /// A model was found.
    Sat(Model),
    /// No model exists.
    Unsat,
}

/// Statistics about queries issued through an [`SmtSolver`].
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Total number of top-level queries.
    pub queries: u64,
    /// Total CEGAR refinement rounds across all queries.
    pub cegar_rounds: u64,
    /// Conjuncts whose CNF was replayed from the cross-query blast cache.
    pub blast_cache_hits: u64,
    /// Conjuncts that had to be blasted from scratch (template built).
    pub blast_cache_misses: u64,
    /// Wall-clock time per query, in the order issued.
    pub durations: Vec<Duration>,
}

impl QueryStats {
    /// Total time across all queries.
    pub fn total_time(&self) -> Duration {
        self.durations.iter().sum()
    }

    /// The fraction of asserted conjuncts served from the blast cache
    /// (0.0 when nothing was asserted).
    pub fn blast_cache_hit_rate(&self) -> f64 {
        let total = self.blast_cache_hits + self.blast_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.blast_cache_hits as f64 / total as f64
    }

    /// Folds another solver's statistics into this one (used to merge
    /// worker-thread solvers into the main run statistics, in a
    /// deterministic order chosen by the caller).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.cegar_rounds += other.cegar_rounds;
        self.blast_cache_hits += other.blast_cache_hits;
        self.blast_cache_misses += other.blast_cache_misses;
        self.durations.extend(other.durations.iter().copied());
    }

    /// The maximum single-query time, or zero if no queries ran.
    pub fn max_time(&self) -> Duration {
        self.durations.iter().max().copied().unwrap_or_default()
    }

    /// The fraction of queries that completed within `limit`.
    /// Reproduces the paper's "99% of queries within 5 s" measurement.
    pub fn fraction_within(&self, limit: Duration) -> f64 {
        if self.durations.is_empty() {
            return 1.0;
        }
        let n = self.durations.iter().filter(|d| **d <= limit).count();
        n as f64 / self.durations.len() as f64
    }
}

/// A stateful SMT front-end: runs queries, keeps statistics, shares a
/// cross-query [`SharedBlastCache`], and optionally dumps each query in
/// SMT-LIB 2 format (mirroring the paper's plugin) when the
/// `LEAPFROG_DUMP_SMT` environment variable names a directory.
#[derive(Debug, Default)]
pub struct SmtSolver {
    stats: QueryStats,
    dump_dir: Option<std::path::PathBuf>,
    cache: SharedBlastCache,
}

impl SmtSolver {
    /// Creates a solver, honouring `LEAPFROG_DUMP_SMT`, with a fresh blast
    /// cache.
    pub fn new() -> Self {
        Self::with_shared_cache(SharedBlastCache::new())
    }

    /// Creates a solver that shares an existing blast cache — worker
    /// threads each build one of these around the main solver's cache, so
    /// premise CNF blasted by any worker is reused by all.
    pub fn with_shared_cache(cache: SharedBlastCache) -> Self {
        let dump_dir = std::env::var_os("LEAPFROG_DUMP_SMT").map(std::path::PathBuf::from);
        SmtSolver {
            stats: QueryStats::default(),
            dump_dir,
            cache,
        }
    }

    /// A clonable handle to this solver's blast cache.
    pub fn shared_cache(&self) -> SharedBlastCache {
        self.cache.clone()
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Folds another solver's statistics into this one.
    pub fn absorb_stats(&mut self, other: &QueryStats) {
        self.stats.absorb(other);
    }

    /// Checks validity of `f` (all free variables universally quantified).
    /// `LEAPFROG_NO_BLAST_CACHE=1` (read once, when the solver's shared
    /// cache is constructed) bypasses the cross-query blast cache — an
    /// ablation knob; results are identical either way.
    pub fn check_valid(&mut self, decls: &Declarations, f: &Formula) -> CheckResult {
        let start = Instant::now();
        if let Some(dir) = self.dump_dir.clone() {
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("query_{:05}.smt2", self.stats.queries));
            let _ = std::fs::write(path, smtlib::validity_query(decls, f));
        }
        let (result, rounds, cache) = check_valid_counting(decls, f, Some(&self.cache));
        self.stats.queries += 1;
        self.stats.cegar_rounds += rounds;
        self.stats.blast_cache_hits += cache.0;
        self.stats.blast_cache_misses += cache.1;
        self.stats.durations.push(start.elapsed());
        result
    }
}

/// Checks validity of `f`, treating free variables as universally
/// quantified. Stateless convenience wrapper around [`SmtSolver`] logic
/// (no cross-query cache).
pub fn check_valid(decls: &Declarations, f: &Formula) -> CheckResult {
    check_valid_counting(decls, f, None).0
}

fn check_valid_counting(
    decls: &Declarations,
    f: &Formula,
    cache: Option<&SharedBlastCache>,
) -> (CheckResult, u64, (u64, u64)) {
    let (outcome, rounds, hits) = check_sat_counting(decls, &Formula::not(f.clone()), cache);
    let result = match outcome {
        SatOutcome::Unsat => CheckResult::Valid,
        SatOutcome::Sat(m) => CheckResult::Invalid(m),
    };
    (result, rounds, hits)
}

/// Checks satisfiability of `f` (free variables existential). Supports the
/// `∃∀` fragment: after negation-normalization, `Forall` blocks must have
/// quantifier-free bodies.
pub fn check_sat(decls: &Declarations, f: &Formula) -> SatOutcome {
    check_sat_counting(decls, f, None).0
}

fn check_sat_counting(
    decls: &Declarations,
    f: &Formula,
    cache: Option<&SharedBlastCache>,
) -> (SatOutcome, u64, (u64, u64)) {
    let mut decls = decls.clone();
    let nf = nnf(&mut decls, f, true);

    // Split the top-level conjunction into quantifier-free parts and
    // universally quantified blocks.
    let mut qf = Vec::new();
    let mut foralls: Vec<(Vec<BvVar>, Formula)> = Vec::new();
    split_conjuncts(&nf, &mut qf, &mut foralls);

    let mut ctx = BlastContext::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let assert = |ctx: &mut BlastContext,
                  decls: &Declarations,
                  f: &Formula,
                  hits: &mut u64,
                  misses: &mut u64|
     -> bool {
        match cache {
            Some(c) => {
                let (ok, hit) = ctx.assert_formula_cached(decls, f, c);
                if hit {
                    *hits += 1;
                } else {
                    *misses += 1;
                }
                ok
            }
            None => ctx.assert_formula(decls, f),
        }
    };
    let mut ok = true;
    for q in &qf {
        ok &= assert(&mut ctx, &decls, q, &mut cache_hits, &mut cache_misses);
    }
    // Seed each forall with the all-zeros instantiation.
    for (xs, body) in &foralls {
        let seed: Vec<BitVec> = xs.iter().map(|x| BitVec::zeros(decls.width(*x))).collect();
        ok &= assert(
            &mut ctx,
            &decls,
            &instantiate_forall(body, xs, &seed),
            &mut cache_hits,
            &mut cache_misses,
        );
    }
    if !ok {
        return (SatOutcome::Unsat, 0, (cache_hits, cache_misses));
    }

    let mut rounds = 0u64;
    loop {
        match ctx.solve(&decls) {
            None => return (SatOutcome::Unsat, rounds, (cache_hits, cache_misses)),
            Some(model) => {
                let mut refined = false;
                for (xs, body) in &foralls {
                    // Does the candidate satisfy ∀xs. body? Check the
                    // negation with non-quantified variables fixed.
                    if let Some(witness) = violates_forall(&decls, &model, xs, body) {
                        let inst = instantiate_forall(body, xs, &witness);
                        if !assert(&mut ctx, &decls, &inst, &mut cache_hits, &mut cache_misses) {
                            return (SatOutcome::Unsat, rounds, (cache_hits, cache_misses));
                        }
                        refined = true;
                    }
                }
                rounds += 1;
                if !refined {
                    return (SatOutcome::Sat(model), rounds, (cache_hits, cache_misses));
                }
            }
        }
    }
}

/// If `model` violates `∀xs. body`, returns witness values for `xs`.
/// Public so incremental entailment sessions (which keep their own
/// persistent [`BlastContext`]) can run the same CEGAR refinement.
pub fn violates_forall(
    decls: &Declarations,
    model: &Model,
    xs: &[BvVar],
    body: &Formula,
) -> Option<Vec<BitVec>> {
    // Substitute every free variable except the bound ones by its model
    // value, then look for xs making the body false.
    let mut map = HashMap::new();
    for v in body.free_vars() {
        if !xs.contains(&v) {
            let value = model
                .get(v)
                .cloned()
                .unwrap_or_else(|| BitVec::zeros(decls.width(v)));
            map.insert(v, Term::lit(value));
        }
    }
    let closed = Formula::not(body.subst(&map));
    let m = sat_qf(decls, &closed)?;
    Some(
        xs.iter()
            .map(|x| {
                m.get(*x)
                    .cloned()
                    .unwrap_or_else(|| BitVec::zeros(decls.width(*x)))
            })
            .collect(),
    )
}

/// Substitutes concrete values for the bound variables of a forall body.
pub fn instantiate_forall(body: &Formula, xs: &[BvVar], values: &[BitVec]) -> Formula {
    let map: HashMap<BvVar, Term> = xs
        .iter()
        .zip(values)
        .map(|(x, v)| (*x, Term::lit(v.clone())))
        .collect();
    body.subst(&map)
}

/// Flattens top-level conjunction into QF conjuncts and forall blocks.
///
/// # Panics
///
/// Panics if a quantifier occurs in an unsupported position (not a
/// top-level conjunct, or with a quantified body). Leapfrog's lowering
/// never produces such formulas.
fn split_conjuncts(f: &Formula, qf: &mut Vec<Formula>, foralls: &mut Vec<(Vec<BvVar>, Formula)>) {
    match f {
        Formula::And(a, b) => {
            split_conjuncts(a, qf, foralls);
            split_conjuncts(b, qf, foralls);
        }
        Formula::Forall(xs, body) => {
            assert!(
                body.is_quantifier_free(),
                "nested quantifiers are outside the supported fragment"
            );
            foralls.push((xs.clone(), (**body).clone()));
        }
        other => {
            assert!(
                other.is_quantifier_free(),
                "quantifier in unsupported position: {other:?}"
            );
            qf.push(other.clone());
        }
    }
}

/// Negation normal form with polarity tracking. Positive `Forall`s are
/// kept; negative ones are skolemized by replacing their bound variables
/// with fresh free variables (sound because no `∀` encloses them in our
/// fragment).
fn nnf(decls: &mut Declarations, f: &Formula, positive: bool) -> Formula {
    match f {
        Formula::Const(b) => Formula::Const(*b == positive),
        Formula::Eq(_, _) => {
            if positive {
                f.clone()
            } else {
                Formula::Not(std::sync::Arc::new(f.clone()))
            }
        }
        Formula::Not(g) => nnf(decls, g, !positive),
        Formula::And(a, b) => {
            let (na, nb) = (nnf(decls, a, positive), nnf(decls, b, positive));
            if positive {
                Formula::and(na, nb)
            } else {
                Formula::or(na, nb)
            }
        }
        Formula::Or(a, b) => {
            let (na, nb) = (nnf(decls, a, positive), nnf(decls, b, positive));
            if positive {
                Formula::or(na, nb)
            } else {
                Formula::and(na, nb)
            }
        }
        Formula::Implies(a, b) => {
            if positive {
                Formula::or(nnf(decls, a, false), nnf(decls, b, true))
            } else {
                Formula::and(nnf(decls, a, true), nnf(decls, b, false))
            }
        }
        Formula::Forall(xs, body) => {
            if positive {
                Formula::forall(xs.clone(), nnf(decls, body, true))
            } else {
                // ¬∀x.body ≡ ∃x.¬body; skolemize with fresh free variables.
                let mut map = HashMap::new();
                for x in xs {
                    let w = decls.width(*x);
                    let name = format!("{}!sk{}", decls.name(*x), decls.len());
                    let fresh = decls.declare(name, w);
                    map.insert(*x, Term::var(fresh));
                }
                nnf(decls, &body.subst(&map), false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn qf_validity() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        // x = x is valid.
        let f = Formula::Eq(Term::var(x), Term::var(x));
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
        // x = 0 is invalid, countermodel has x != 0.
        let g = Formula::Eq(Term::var(x), Term::lit(bv("0000")));
        match check_valid(&d, &g) {
            CheckResult::Invalid(m) => assert_ne!(m.get(x), Some(&bv("0000"))),
            CheckResult::Valid => panic!("x = 0 should not be valid"),
        }
    }

    #[test]
    fn slices_cover_concat_validity() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        // (x[0:4) ++ x[4:4)) = x is valid.
        let f = Formula::Eq(
            Term::concat(
                Term::slice(Term::var(x), 0, 4),
                Term::slice(Term::var(x), 4, 4),
            ),
            Term::var(x),
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn forall_premise_entailment_valid() {
        // (∀x. a = x ++ x[0:0)) … simpler: (∀x. a[0:1) = x[0:1) ⇒ …) is
        // awkward; use: (∀x. x = a) ⇒ a = b is NOT generally checkable…
        // Test the canonical shape instead:
        // (∀x. a ++ x = b ++ x)  ⇒  a = b        — valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn forall_premise_entailment_invalid() {
        // (∀x. x = x) ⇒ a = b  — invalid (premise trivial).
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::var(x)));
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        match check_valid(&d, &f) {
            CheckResult::Invalid(m) => {
                assert_ne!(m.get(a), m.get(b));
            }
            CheckResult::Valid => panic!("should be invalid"),
        }
    }

    #[test]
    fn forall_conclusion_validity() {
        // a = 11 ⇒ ∀x. (a ++ x)[0:2) = 11   — valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let x = d.declare("x", 3);
        let f = Formula::implies(
            Formula::Eq(Term::var(a), Term::lit(bv("11"))),
            Formula::forall(
                vec![x],
                Formula::eq(
                    Term::slice(Term::concat(Term::var(a), Term::var(x)), 0, 2),
                    Term::lit(bv("11")),
                ),
            ),
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn forall_conclusion_invalid_needs_skolem() {
        // ∀x. x = 00 is invalid; negation must skolemize.
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let f = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::lit(bv("00"))));
        assert!(matches!(check_valid(&d, &f), CheckResult::Invalid(_)));
    }

    #[test]
    fn unsat_premise_makes_entailment_valid() {
        // (∀x. x = 10) ⇒ anything  — the premise is unsatisfiable (x is
        // universally quantified), so the implication is valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(vec![x], Formula::Eq(Term::var(x), Term::lit(bv("10"))));
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn multiple_forall_premises() {
        // (∀x. a ++ x = b ++ x) ∧ (∀y. b ++ y = c ++ y) ⇒ a = c — valid.
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let b = d.declare("b", 2);
        let c = d.declare("c", 2);
        let x = d.declare("x", 1);
        let y = d.declare("y", 1);
        let p1 = Formula::forall(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        let p2 = Formula::forall(
            vec![y],
            Formula::Eq(
                Term::concat(Term::var(b), Term::var(y)),
                Term::concat(Term::var(c), Term::var(y)),
            ),
        );
        let f = Formula::implies(
            Formula::and(p1, p2),
            Formula::Eq(Term::var(a), Term::var(c)),
        );
        assert!(matches!(check_valid(&d, &f), CheckResult::Valid));
    }

    #[test]
    fn differential_small_widths_against_enumeration() {
        // Random ∃∀ formulas over tiny widths: compare the CEGAR solver
        // against brute-force enumeration through `Formula::eval`.
        let mut state = 0xabcdefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..30 {
            let mut d = Declarations::new();
            let a = d.declare("a", 2);
            let x = d.declare("x", 2);
            let rand_term = |next: &mut dyn FnMut() -> u32, v: BvVar| -> Term {
                match next() % 3 {
                    0 => Term::var(v),
                    1 => Term::lit(BitVec::from_u64(next() as u64 & 3, 2)),
                    _ => Term::concat(
                        Term::slice(Term::var(v), 1, 1),
                        Term::slice(Term::var(v), 0, 1),
                    ),
                }
            };
            let body = Formula::or(
                Formula::eq(rand_term(&mut next, a), rand_term(&mut next, x)),
                Formula::not(Formula::eq(
                    rand_term(&mut next, x),
                    rand_term(&mut next, x),
                )),
            );
            let f = Formula::implies(
                Formula::forall(vec![x], body.clone()),
                Formula::eq(
                    rand_term(&mut next, a),
                    Term::lit(BitVec::from_u64(next() as u64 & 3, 2)),
                ),
            );
            // Brute-force validity: enumerate a.
            let mut brute_valid = true;
            for av in 0..4u64 {
                let mut m = Model::new();
                m.set(a, BitVec::from_u64(av, 2));
                m.set(x, BitVec::zeros(2));
                if !f.eval(&d, &m) {
                    brute_valid = false;
                    break;
                }
            }
            let got = matches!(check_valid(&d, &f), CheckResult::Valid);
            assert_eq!(got, brute_valid, "round {round}: disagreement on {f:?}");
        }
    }

    #[test]
    fn solver_stats_accumulate() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let mut s = SmtSolver {
            stats: QueryStats::default(),
            dump_dir: None,
            cache: SharedBlastCache::new(),
        };
        s.check_valid(&d, &Formula::Eq(Term::var(x), Term::var(x)));
        s.check_valid(&d, &Formula::Eq(Term::var(x), Term::lit(bv("0000"))));
        assert_eq!(s.stats().queries, 2);
        assert_eq!(s.stats().durations.len(), 2);
        assert!(s.stats().fraction_within(Duration::from_secs(5)) > 0.99);
    }

    #[test]
    fn repeated_queries_hit_the_blast_cache() {
        // The same premise conjunct across successive queries must be
        // served from the cache after the first blast, with identical
        // verdicts throughout.
        let mut d = Declarations::new();
        let a = d.declare("a", 3);
        let b = d.declare("b", 3);
        let x = d.declare("x", 2);
        let premise = Formula::forall(
            vec![x],
            Formula::Eq(
                Term::concat(Term::var(a), Term::var(x)),
                Term::concat(Term::var(b), Term::var(x)),
            ),
        );
        let f = Formula::implies(premise, Formula::Eq(Term::var(a), Term::var(b)));
        let mut s = SmtSolver::new();
        for _ in 0..4 {
            assert!(matches!(s.check_valid(&d, &f), CheckResult::Valid));
        }
        let stats = s.stats().clone();
        assert!(stats.blast_cache_hits > 0, "{stats:?}");
        assert!(stats.blast_cache_misses > 0, "{stats:?}");
        assert!(stats.blast_cache_hit_rate() > 0.5, "{stats:?}");
    }

    #[test]
    fn shared_cache_is_shared_between_solvers() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let f = Formula::Eq(Term::var(x), Term::lit(bv("1010")));
        let mut s1 = SmtSolver::new();
        assert!(matches!(s1.check_valid(&d, &f), CheckResult::Invalid(_)));
        let mut s2 = SmtSolver::with_shared_cache(s1.shared_cache());
        assert!(matches!(s2.check_valid(&d, &f), CheckResult::Invalid(_)));
        assert_eq!(s2.stats().blast_cache_misses, 0, "{:?}", s2.stats());
        assert!(s2.stats().blast_cache_hits > 0);
    }
}
