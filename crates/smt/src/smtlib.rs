//! SMT-LIB 2 pretty-printing of `FOL(BV)` queries.
//!
//! The paper's implementation serializes its low-level verification
//! conditions to SMT-LIB via a trusted Coq plugin and ships them to Z3,
//! CVC4 or Boolector (§6.3). This reproduction solves queries in-process,
//! but retains the printer for fidelity and debuggability: setting
//! `LEAPFROG_DUMP_SMT=<dir>` makes [`crate::SmtSolver`] write every query it
//! answers as a `.smt2` file that an external solver can replay.
//!
//! Index translation: this crate numbers bits MSB-first (bit 0 leftmost),
//! SMT-LIB numbers them LSB-first (bit 0 rightmost), so a slice of `len`
//! bits at `start` on a width-`w` term prints as
//! `((_ extract (w-1-start) (w-start-len)) t)`.

use std::fmt::Write as _;

use crate::term::{Declarations, Formula, Term};

/// Renders a full validity query: declarations, `(assert (not f))` and
/// `(check-sat)`. An external solver answering `unsat` confirms validity.
pub fn validity_query(decls: &Declarations, f: &Formula) -> String {
    let mut out = String::new();
    out.push_str("(set-logic BV)\n");
    out.push_str("(set-info :source |leapfrog-rs entailment query|)\n");
    let bound = bound_vars(f);
    for v in decls.vars() {
        if bound.contains(&v) {
            continue;
        }
        let w = decls.width(v);
        if w == 0 {
            continue; // zero-width variables cannot be declared in SMT-LIB
        }
        let _ = writeln!(
            out,
            "(declare-const {} (_ BitVec {}))",
            sanitize(decls.name(v)),
            w
        );
    }
    let _ = writeln!(out, "(assert (not {}))", format_formula(decls, f));
    out.push_str("(check-sat)\n");
    out
}

fn bound_vars(f: &Formula) -> std::collections::BTreeSet<crate::term::BvVar> {
    let mut out = std::collections::BTreeSet::new();
    collect_bound(f, &mut out);
    out
}

fn collect_bound(f: &Formula, out: &mut std::collections::BTreeSet<crate::term::BvVar>) {
    match f {
        Formula::Const(_) | Formula::Eq(_, _) => {}
        Formula::Not(g) => collect_bound(g, out),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            collect_bound(a, out);
            collect_bound(b, out);
        }
        Formula::Forall(vars, body) => {
            out.extend(vars.iter().copied());
            collect_bound(body, out);
        }
    }
}

/// Formats a formula as an SMT-LIB s-expression.
pub fn format_formula(decls: &Declarations, f: &Formula) -> String {
    match f {
        Formula::Const(true) => "true".into(),
        Formula::Const(false) => "false".into(),
        Formula::Eq(a, b) => {
            if a.width(decls) == 0 {
                // Zero-width equalities are vacuously true; SMT-LIB has no
                // zero-width bitvectors.
                "true".into()
            } else {
                format!("(= {} {})", format_term(decls, a), format_term(decls, b))
            }
        }
        Formula::Not(g) => format!("(not {})", format_formula(decls, g)),
        Formula::And(a, b) => {
            format!(
                "(and {} {})",
                format_formula(decls, a),
                format_formula(decls, b)
            )
        }
        Formula::Or(a, b) => {
            format!(
                "(or {} {})",
                format_formula(decls, a),
                format_formula(decls, b)
            )
        }
        Formula::Implies(a, b) => {
            format!(
                "(=> {} {})",
                format_formula(decls, a),
                format_formula(decls, b)
            )
        }
        Formula::Forall(vars, body) => {
            let mut binders = String::new();
            for v in vars {
                let _ = write!(
                    binders,
                    "({} (_ BitVec {}))",
                    sanitize(decls.name(*v)),
                    decls.width(*v).max(1)
                );
            }
            format!("(forall ({}) {})", binders, format_formula(decls, body))
        }
    }
}

/// Formats a term as an SMT-LIB s-expression.
pub fn format_term(decls: &Declarations, t: &Term) -> String {
    match t {
        Term::Lit(bv) => format!("#b{bv}"),
        Term::Var(v) => sanitize(decls.name(*v)),
        Term::Slice(inner, start, len) => {
            let w = inner.width(decls);
            let hi = w - 1 - start;
            let lo = w - start - len;
            format!("((_ extract {hi} {lo}) {})", format_term(decls, inner))
        }
        Term::Concat(a, b) => {
            format!(
                "(concat {} {})",
                format_term(decls, a),
                format_term(decls, b)
            )
        }
    }
}

/// Makes a variable name a legal SMT-LIB simple symbol.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || "~!@$%^&*_-+=<>.?/".contains(c) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.chars().next().unwrap().is_ascii_digit() {
        out.insert(0, 'v');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Formula, Term};
    use leapfrog_bitvec::BitVec;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn extract_indices_flip_endianness() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        // Our slice [2; 3] of an 8-bit term covers MSB-first bits 2..4,
        // i.e. SMT-LIB bits 5..3.
        let t = Term::Slice(std::sync::Arc::new(Term::var(x)), 2, 3);
        assert_eq!(format_term(&d, &t), "((_ extract 5 3) x)");
    }

    #[test]
    fn literal_formatting() {
        let d = Declarations::new();
        assert_eq!(format_term(&d, &Term::lit(bv("1010"))), "#b1010");
    }

    #[test]
    fn full_query_shape() {
        let mut d = Declarations::new();
        let x = d.declare("buf<", 4);
        let f = Formula::Eq(Term::var(x), Term::lit(bv("1111")));
        let q = validity_query(&d, &f);
        assert!(q.contains("(set-logic BV)"));
        assert!(q.contains("(declare-const buf< (_ BitVec 4))"));
        assert!(q.contains("(assert (not (= buf< #b1111)))"));
        assert!(q.ends_with("(check-sat)\n"));
    }

    #[test]
    fn forall_binders_and_no_declared_const() {
        let mut d = Declarations::new();
        let a = d.declare("a", 2);
        let x = d.declare("x", 2);
        let f = Formula::forall(vec![x], Formula::Eq(Term::var(a), Term::var(x)));
        let q = validity_query(&d, &f);
        assert!(q.contains("(declare-const a (_ BitVec 2))"));
        assert!(!q.contains("(declare-const x"));
        assert!(q.contains("(forall ((x (_ BitVec 2))) (= a x))"));
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("hdr[ip]>"), "hdr_ip_>");
        assert_eq!(sanitize("0x"), "v0x");
        assert_eq!(sanitize(""), "v");
    }

    #[test]
    fn balanced_parentheses() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let y = d.declare("y", 4);
        let f = Formula::implies(
            Formula::and(
                Formula::Eq(Term::var(x), Term::var(y)),
                Formula::not(Formula::Eq(
                    Term::slice(Term::var(x), 0, 2),
                    Term::lit(bv("01")),
                )),
            ),
            Formula::or(
                Formula::Eq(
                    Term::concat(Term::var(x), Term::var(y)),
                    Term::lit(bv("10101010")),
                ),
                Formula::ff(),
            ),
        );
        let q = validity_query(&d, &f);
        let opens = q.chars().filter(|&c| c == '(').count();
        let closes = q.chars().filter(|&c| c == ')').count();
        assert_eq!(opens, closes);
    }
}
