//! Terms, formulas, declarations, models and evaluation for `FOL(BV)`.
//!
//! The term language is deliberately the *exact* fragment Leapfrog's lowering
//! produces (paper, Figure 3 after store elimination): bitvector literals,
//! variables, exact slices and concatenation. Widths are static: every term
//! has a width computable from the declarations, and slices are in-bounds by
//! construction (the clamped slicing of the surface language is resolved one
//! level up, where buffer lengths are known).

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use leapfrog_bitvec::BitVec;

/// A bitvector variable, an index into a [`Declarations`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BvVar(pub u32);

/// The variable table for a query: names and widths.
#[derive(Debug, Clone, Default)]
pub struct Declarations {
    names: Vec<String>,
    widths: Vec<usize>,
}

impl Declarations {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a fresh variable with the given name and bit width.
    pub fn declare(&mut self, name: impl Into<String>, width: usize) -> BvVar {
        let v = BvVar(self.names.len() as u32);
        self.names.push(name.into());
        self.widths.push(width);
        v
    }

    /// The width of `v`.
    pub fn width(&self, v: BvVar) -> usize {
        self.widths[v.0 as usize]
    }

    /// The name of `v`.
    pub fn name(&self, v: BvVar) -> &str {
        &self.names[v.0 as usize]
    }

    /// The number of declared variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all declared variables.
    pub fn vars(&self) -> impl Iterator<Item = BvVar> + '_ {
        (0..self.names.len() as u32).map(BvVar)
    }

    /// Finds a declared variable by name (first match wins). Used by model
    /// lifting in the counterexample engine.
    pub fn lookup(&self, name: &str) -> Option<BvVar> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| BvVar(i as u32))
    }
}

/// A bitvector term. Recursive positions are reference-counted so cloning a
/// large term is cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A bitvector constant.
    Lit(BitVec),
    /// A declared variable.
    Var(BvVar),
    /// Exact slice: `len` bits starting at bit `start` (bit 0 leftmost).
    Slice(Arc<Term>, usize, usize),
    /// Concatenation, left bits first.
    Concat(Arc<Term>, Arc<Term>),
}

impl Term {
    /// A literal term.
    pub fn lit(bv: BitVec) -> Term {
        Term::Lit(bv)
    }

    /// The empty-bitvector literal `ε`.
    pub fn empty() -> Term {
        Term::Lit(BitVec::new())
    }

    /// A variable term.
    pub fn var(v: BvVar) -> Term {
        Term::Var(v)
    }

    /// An exact slice of `len` bits starting at `start`. Simplifies
    /// literal slices, empty slices and full-width slices eagerly.
    pub fn slice(t: Term, start: usize, len: usize) -> Term {
        if len == 0 {
            return Term::empty();
        }
        match t {
            Term::Lit(bv) => Term::Lit(bv.subrange(start, len)),
            Term::Slice(inner, s0, _l0) => Term::Slice(inner, s0 + start, len),
            Term::Concat(a, b) => {
                // Push the slice through the concat when it falls entirely
                // on one side; this keeps WP-generated terms small.
                let wa = a.width_opt();
                if let Some(wa) = wa {
                    if start + len <= wa {
                        return Term::slice((*a).clone(), start, len);
                    }
                    if start >= wa {
                        return Term::slice((*b).clone(), start - wa, len);
                    }
                    // Straddles: split.
                    let left = Term::slice((*a).clone(), start, wa - start);
                    let right = Term::slice((*b).clone(), 0, len - (wa - start));
                    return Term::concat(left, right);
                }
                Term::Slice(Arc::new(Term::Concat(a, b)), start, len)
            }
            other => Term::Slice(Arc::new(other), start, len),
        }
    }

    /// Concatenation `a ++ b`, dropping empty sides and fusing adjacent
    /// literals.
    pub fn concat(a: Term, b: Term) -> Term {
        match (&a, &b) {
            (Term::Lit(x), _) if x.is_empty() => return b,
            (_, Term::Lit(y)) if y.is_empty() => return a,
            (Term::Lit(x), Term::Lit(y)) => return Term::Lit(x.concat(y)),
            _ => {}
        }
        Term::Concat(Arc::new(a), Arc::new(b))
    }

    /// Concatenates a sequence of terms, left to right.
    pub fn concat_all(parts: impl IntoIterator<Item = Term>) -> Term {
        let mut it = parts.into_iter();
        let first = it.next().unwrap_or_else(Term::empty);
        it.fold(first, Term::concat)
    }

    /// The width of the term, looked up through `decls` for variables.
    pub fn width(&self, decls: &Declarations) -> usize {
        match self {
            Term::Lit(bv) => bv.len(),
            Term::Var(v) => decls.width(*v),
            Term::Slice(_, _, len) => *len,
            Term::Concat(a, b) => a.width(decls) + b.width(decls),
        }
    }

    /// The width when it is computable without declarations (no variables).
    fn width_opt(&self) -> Option<usize> {
        match self {
            Term::Lit(bv) => Some(bv.len()),
            Term::Var(_) => None,
            Term::Slice(_, _, len) => Some(*len),
            Term::Concat(a, b) => Some(a.width_opt()? + b.width_opt()?),
        }
    }

    /// Collects the free variables into `out`.
    pub fn free_vars(&self, out: &mut BTreeSet<BvVar>) {
        match self {
            Term::Lit(_) => {}
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::Slice(t, _, _) => t.free_vars(out),
            Term::Concat(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }

    /// Capture-avoiding substitution of variables by terms. (There are no
    /// binders inside terms, so this is plain replacement.)
    pub fn subst(&self, map: &HashMap<BvVar, Term>) -> Term {
        match self {
            Term::Lit(_) => self.clone(),
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Slice(t, s, l) => Term::slice(t.subst(map), *s, *l),
            Term::Concat(a, b) => Term::concat(a.subst(map), b.subst(map)),
        }
    }

    /// Evaluates the term under a model.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from the model or a slice is out of
    /// bounds (ill-typed term).
    pub fn eval(&self, model: &Model) -> BitVec {
        match self {
            Term::Lit(bv) => bv.clone(),
            Term::Var(v) => model
                .get(*v)
                .unwrap_or_else(|| panic!("model missing variable {v:?}"))
                .clone(),
            Term::Slice(t, s, l) => t.eval(model).subrange(*s, *l),
            Term::Concat(a, b) => a.eval(model).concat(&b.eval(model)),
        }
    }

    /// Checks that all slices are in bounds and returns the width.
    pub fn check(&self, decls: &Declarations) -> Result<usize, TypeError> {
        match self {
            Term::Lit(bv) => Ok(bv.len()),
            Term::Var(v) => {
                if (v.0 as usize) < decls.len() {
                    Ok(decls.width(*v))
                } else {
                    Err(TypeError::UndeclaredVar(*v))
                }
            }
            Term::Slice(t, s, l) => {
                let w = t.check(decls)?;
                if s + l <= w {
                    Ok(*l)
                } else {
                    Err(TypeError::SliceOutOfBounds {
                        width: w,
                        start: *s,
                        len: *l,
                    })
                }
            }
            Term::Concat(a, b) => Ok(a.check(decls)? + b.check(decls)?),
        }
    }
}

/// A type error in a term or formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable was used without being declared.
    UndeclaredVar(BvVar),
    /// A slice reads past the end of its operand.
    SliceOutOfBounds {
        /// Operand width.
        width: usize,
        /// Slice start.
        start: usize,
        /// Slice length.
        len: usize,
    },
    /// The two sides of an equality have different widths.
    EqWidthMismatch(usize, usize),
    /// A quantifier binds a variable that is not declared.
    UnboundQuantifiedVar(BvVar),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UndeclaredVar(v) => write!(f, "undeclared variable {v:?}"),
            TypeError::SliceOutOfBounds { width, start, len } => {
                write!(f, "slice [{start}; {len}] out of bounds for width {width}")
            }
            TypeError::EqWidthMismatch(a, b) => {
                write!(f, "equality between widths {a} and {b}")
            }
            TypeError::UnboundQuantifiedVar(v) => {
                write!(f, "quantified variable {v:?} is not declared")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// A first-order formula over bitvector terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// `true` or `false`.
    Const(bool),
    /// Bitvector equality (both sides must have the same width).
    Eq(Term, Term),
    /// Negation.
    Not(Arc<Formula>),
    /// Conjunction.
    And(Arc<Formula>, Arc<Formula>),
    /// Disjunction.
    Or(Arc<Formula>, Arc<Formula>),
    /// Implication.
    Implies(Arc<Formula>, Arc<Formula>),
    /// Universal quantification over declared variables.
    Forall(Vec<BvVar>, Arc<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub fn tt() -> Formula {
        Formula::Const(true)
    }

    /// The constant `false`.
    pub fn ff() -> Formula {
        Formula::Const(false)
    }

    /// Equality, constant-folding literal comparisons.
    pub fn eq(a: Term, b: Term) -> Formula {
        if let (Term::Lit(x), Term::Lit(y)) = (&a, &b) {
            return Formula::Const(x == y);
        }
        if a == b {
            return Formula::tt();
        }
        Formula::Eq(a, b)
    }

    /// Negation, with double-negation and constant elimination.
    #[allow(clippy::should_implement_trait)] // DSL-style smart constructor
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::Const(b) => Formula::Const(!b),
            Formula::Not(inner) => (*inner).clone(),
            other => Formula::Not(Arc::new(other)),
        }
    }

    /// Conjunction with unit/zero simplification.
    pub fn and(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::ff(),
            (Formula::Const(true), _) => b,
            (_, Formula::Const(true)) => a,
            _ => Formula::And(Arc::new(a), Arc::new(b)),
        }
    }

    /// Conjunction of an iterator of formulas.
    pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::tt(), Formula::and)
    }

    /// Disjunction with unit/zero simplification.
    pub fn or(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::tt(),
            (Formula::Const(false), _) => b,
            (_, Formula::Const(false)) => a,
            _ => Formula::Or(Arc::new(a), Arc::new(b)),
        }
    }

    /// Disjunction of an iterator of formulas.
    pub fn or_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::ff(), Formula::or)
    }

    /// Implication with simplification.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::Const(false), _) => Formula::tt(),
            (Formula::Const(true), _) => b,
            (_, Formula::Const(true)) => Formula::tt(),
            (_, Formula::Const(false)) => Formula::not(a),
            _ => Formula::Implies(Arc::new(a), Arc::new(b)),
        }
    }

    /// Universal quantification; collapses empty binder lists.
    pub fn forall(vars: Vec<BvVar>, body: Formula) -> Formula {
        if vars.is_empty() {
            return body;
        }
        if let Formula::Const(_) = body {
            return body;
        }
        Formula::Forall(vars, Arc::new(body))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<BvVar> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut out);
        out
    }

    fn free_vars_into(&self, out: &mut BTreeSet<BvVar>) {
        match self {
            Formula::Const(_) => {}
            Formula::Eq(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Formula::Not(f) => f.free_vars_into(out),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.free_vars_into(out);
                b.free_vars_into(out);
            }
            Formula::Forall(vars, body) => {
                let mut inner = BTreeSet::new();
                body.free_vars_into(&mut inner);
                for v in vars {
                    inner.remove(v);
                }
                out.extend(inner);
            }
        }
    }

    /// Substitution of free variables by terms. Bound variables are skipped
    /// (quantified variables are fresh by construction, so capture cannot
    /// occur in Leapfrog-generated formulas; we still guard against it).
    pub fn subst(&self, map: &HashMap<BvVar, Term>) -> Formula {
        match self {
            Formula::Const(_) => self.clone(),
            Formula::Eq(a, b) => Formula::eq(a.subst(map), b.subst(map)),
            Formula::Not(f) => Formula::not(f.subst(map)),
            Formula::And(a, b) => Formula::and(a.subst(map), b.subst(map)),
            Formula::Or(a, b) => Formula::or(a.subst(map), b.subst(map)),
            Formula::Implies(a, b) => Formula::implies(a.subst(map), b.subst(map)),
            Formula::Forall(vars, body) => {
                let mut inner = map.clone();
                for v in vars {
                    inner.remove(v);
                }
                Formula::forall(vars.clone(), body.subst(&inner))
            }
        }
    }

    /// Whether the formula is quantifier-free.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::Const(_) | Formula::Eq(_, _) => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.is_quantifier_free() && b.is_quantifier_free()
            }
            Formula::Forall(_, _) => false,
        }
    }

    /// Checks widths and declarations.
    pub fn check(&self, decls: &Declarations) -> Result<(), TypeError> {
        match self {
            Formula::Const(_) => Ok(()),
            Formula::Eq(a, b) => {
                let wa = a.check(decls)?;
                let wb = b.check(decls)?;
                if wa == wb {
                    Ok(())
                } else {
                    Err(TypeError::EqWidthMismatch(wa, wb))
                }
            }
            Formula::Not(f) => f.check(decls),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.check(decls)?;
                b.check(decls)
            }
            Formula::Forall(vars, body) => {
                for v in vars {
                    if (v.0 as usize) >= decls.len() {
                        return Err(TypeError::UnboundQuantifiedVar(*v));
                    }
                }
                body.check(decls)
            }
        }
    }

    /// Evaluates the formula under a model; quantifiers are expanded by
    /// enumeration (use only for small widths, e.g. in tests).
    pub fn eval(&self, decls: &Declarations, model: &Model) -> bool {
        match self {
            Formula::Const(b) => *b,
            Formula::Eq(a, b) => a.eval(model) == b.eval(model),
            Formula::Not(f) => !f.eval(decls, model),
            Formula::And(a, b) => a.eval(decls, model) && b.eval(decls, model),
            Formula::Or(a, b) => a.eval(decls, model) || b.eval(decls, model),
            Formula::Implies(a, b) => !a.eval(decls, model) || b.eval(decls, model),
            Formula::Forall(vars, body) => {
                let total: usize = vars.iter().map(|v| decls.width(*v)).sum();
                assert!(
                    total <= 20,
                    "quantifier enumeration limited to 20 bits in eval"
                );
                let mut m = model.clone();
                for assignment in 0u64..(1u64 << total) {
                    let mut offset = 0;
                    for v in vars {
                        let w = decls.width(*v);
                        let bits = (assignment >> offset) & ((1u64 << w) - 1);
                        m.set(*v, BitVec::from_u64(bits, w));
                        offset += w;
                    }
                    if !body.eval(decls, &m) {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// An assignment of bitvector values to variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<BvVar, BitVec>,
}

impl Model {
    /// The empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value of `v`.
    pub fn set(&mut self, v: BvVar, value: BitVec) {
        self.values.insert(v, value);
    }

    /// The value of `v`, if assigned.
    pub fn get(&self, v: BvVar) -> Option<&BitVec> {
        self.values.get(&v)
    }

    /// The value of `v`, defaulting to the all-zeros vector of its declared
    /// width. Solvers omit variables that do not constrain the outcome; for
    /// witness lifting any concrete completion is sound, and zeros keep
    /// extracted packets canonical.
    pub fn value_or_zeros(&self, decls: &Declarations, v: BvVar) -> BitVec {
        self.values
            .get(&v)
            .cloned()
            .unwrap_or_else(|| BitVec::zeros(decls.width(v)))
    }

    /// Iterates over the assignments.
    pub fn iter(&self) -> impl Iterator<Item = (BvVar, &BitVec)> {
        self.values.iter().map(|(v, bv)| (*v, bv))
    }

    /// Renders the model with variable names for diagnostics.
    pub fn display<'a>(&'a self, decls: &'a Declarations) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Model, &'a Declarations);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let mut entries: Vec<_> = self.0.values.iter().collect();
                entries.sort_by_key(|(v, _)| v.0);
                for (v, bv) in entries {
                    writeln!(f, "  {} = {}", self.1.name(*v), bv)?;
                }
                Ok(())
            }
        }
        D(self, decls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn slice_simplifies_literals() {
        let t = Term::slice(Term::lit(bv("10110")), 1, 3);
        assert_eq!(t, Term::Lit(bv("011")));
    }

    #[test]
    fn slice_of_slice_composes() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        let t = Term::slice(Term::slice(Term::var(x), 2, 5), 1, 2);
        assert_eq!(t, Term::Slice(Arc::new(Term::Var(x)), 3, 2));
    }

    #[test]
    fn slice_pushes_through_concat() {
        let a = Term::lit(bv("1010"));
        let b = Term::lit(bv("0101"));
        // Slice entirely within the left literal.
        let t = Term::slice(Term::concat(a.clone(), b.clone()), 1, 2);
        assert_eq!(t, Term::Lit(bv("01")));
        // Straddling slice splits and re-fuses literals.
        let t = Term::slice(Term::concat(a, b), 3, 2);
        assert_eq!(t, Term::Lit(bv("00")));
    }

    #[test]
    fn concat_drops_empty_and_fuses() {
        let t = Term::concat(Term::empty(), Term::lit(bv("01")));
        assert_eq!(t, Term::Lit(bv("01")));
        let t = Term::concat(Term::lit(bv("1")), Term::lit(bv("0")));
        assert_eq!(t, Term::Lit(bv("10")));
    }

    #[test]
    fn widths_and_check() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        let t = Term::concat(Term::var(x), Term::slice(Term::var(x), 0, 4));
        assert_eq!(t.width(&d), 12);
        assert_eq!(t.check(&d), Ok(12));
        let bad = Term::Slice(Arc::new(Term::Var(x)), 6, 4);
        assert!(matches!(
            bad.check(&d),
            Err(TypeError::SliceOutOfBounds { .. })
        ));
    }

    #[test]
    fn formula_check_rejects_width_mismatch() {
        let mut d = Declarations::new();
        let x = d.declare("x", 8);
        let y = d.declare("y", 4);
        let f = Formula::Eq(Term::var(x), Term::var(y));
        assert!(matches!(f.check(&d), Err(TypeError::EqWidthMismatch(8, 4))));
    }

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(
            Formula::eq(Term::lit(bv("10")), Term::lit(bv("10"))),
            Formula::tt()
        );
        assert_eq!(
            Formula::eq(Term::lit(bv("10")), Term::lit(bv("11"))),
            Formula::ff()
        );
        assert_eq!(Formula::and(Formula::tt(), Formula::ff()), Formula::ff());
        assert_eq!(Formula::or(Formula::ff(), Formula::tt()), Formula::tt());
        assert_eq!(
            Formula::implies(Formula::ff(), Formula::ff()),
            Formula::tt()
        );
        assert_eq!(Formula::not(Formula::not(Formula::ff())), Formula::ff());
    }

    #[test]
    fn eval_respects_model() {
        let mut d = Declarations::new();
        let x = d.declare("x", 4);
        let mut m = Model::new();
        m.set(x, bv("1010"));
        let f = Formula::eq(
            Term::slice(Term::var(x), 0, 2),
            Term::slice(Term::var(x), 2, 2),
        );
        assert!(f.eval(&d, &m)); // 10 == 10
        let g = Formula::eq(Term::var(x), Term::lit(bv("1010")));
        assert!(g.eval(&d, &m));
    }

    #[test]
    fn forall_eval_enumerates() {
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        // forall x. x = x  — valid.
        let f = Formula::Forall(vec![x], Arc::new(Formula::Eq(Term::var(x), Term::var(x))));
        assert!(f.eval(&d, &Model::new()));
        // forall x. x = 00 — invalid.
        let g = Formula::Forall(
            vec![x],
            Arc::new(Formula::Eq(Term::var(x), Term::lit(bv("00")))),
        );
        assert!(!g.eval(&d, &Model::new()));
    }

    #[test]
    fn subst_replaces_free_not_bound() {
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let y = d.declare("y", 2);
        let mut map = HashMap::new();
        map.insert(x, Term::lit(bv("11")));
        let f = Formula::and(
            Formula::Eq(Term::var(x), Term::var(y)),
            Formula::Forall(vec![x], Arc::new(Formula::Eq(Term::var(x), Term::var(y)))),
        );
        let g = f.subst(&map);
        // Free occurrence replaced, bound occurrence untouched.
        match g {
            Formula::And(a, b) => {
                assert_eq!(*a, Formula::Eq(Term::lit(bv("11")), Term::var(y)));
                assert!(matches!(&*b, Formula::Forall(vs, body)
                    if vs == &vec![x]
                    && **body == Formula::Eq(Term::var(x), Term::var(y))));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn free_vars_excludes_bound() {
        let mut d = Declarations::new();
        let x = d.declare("x", 2);
        let y = d.declare("y", 2);
        let f = Formula::Forall(vec![x], Arc::new(Formula::Eq(Term::var(x), Term::var(y))));
        let fv = f.free_vars();
        assert!(fv.contains(&y));
        assert!(!fv.contains(&x));
    }
}
