//! The metrics registry: lock-free counters, gauges and fixed-bucket
//! latency histograms, merged deterministically at read time.
//!
//! Writers never take a lock on the hot path. A [`Counter`] is a small
//! fixed array of cache-line-padded shards; each thread picks a shard by
//! a thread-local index and does one relaxed `fetch_add`. Reads sum the
//! shards in shard order, so a snapshot is a deterministic function of
//! the writes that happened before it regardless of which threads did
//! them. A [`Gauge`] is a single atomic (gauges are set from one place
//! at a time). A [`Histogram`] has fixed nanosecond bucket bounds and a
//! sharded count/sum per bucket.
//!
//! The registry renders two ways: Prometheus-style text exposition
//! ([`MetricsSnapshot::render_prometheus`]) and a JSON object
//! ([`MetricsSnapshot::render_json`]). The exposition format is also
//! *parsed* by [`parse_prometheus`] — the round-trip is property-tested
//! and the serve gauntlet uses the parser to validate what the daemon
//! scrapes out.
//!
//! A process-wide kill switch ([`set_metrics_enabled`]) exists so the
//! overhead-guard bench can measure the instrumented binary with every
//! increment compiled in but dynamically ignored.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of per-thread shards in counters and histograms. A power of
/// two so the thread index wraps cheaply; 16 covers the engine's worker
/// pools (worker counts are capped well below this in practice, and
/// collisions only cost a shared cache line, never correctness).
const SHARDS: usize = 16;

/// Global dynamic kill switch consulted by every write. `true` at
/// startup; the overhead bench flips it to price the instrumentation.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all metric writes process-wide.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric writes are currently recorded.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// This thread's shard index, assigned round-robin at first use.
    static SHARD: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        (NEXT.fetch_add(1, Ordering::Relaxed) as usize) % SHARDS
    };
}

fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// One cache line worth of counter so shards don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded per thread.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n == 0 || !metrics_enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total: shard values summed in shard order.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable instantaneous value (queue depth, open connections).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        if metrics_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    pub fn inc(&self) {
        if metrics_enabled() {
            self.value.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn dec(&self) {
        if metrics_enabled() {
            self.value.fetch_sub(1, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed latency bucket upper bounds, in nanoseconds. The final
/// implicit bucket is `+Inf`. Chosen to straddle the engine's range:
/// sub-millisecond warm memo hits up to multi-second cold Table-2 rows.
pub const BUCKET_BOUNDS_NS: [u64; 8] = [
    10_000,         // 10µs
    100_000,        // 100µs
    1_000_000,      // 1ms
    10_000_000,     // 10ms
    100_000_000,    // 100ms
    1_000_000_000,  // 1s
    10_000_000_000, // 10s
    60_000_000_000, // 60s
];

/// Bucket count including the `+Inf` overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram. Each bucket (and the sum) is
/// sharded like [`Counter`]; `record` does two relaxed adds.
pub struct Histogram {
    buckets: [Counter; BUCKETS],
    sum_ns: Counter,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: Default::default(),
            sum_ns: Counter::new(),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].inc();
        // A zero-duration observation must still move the sum's
        // "metrics off" fast path out of the way: add() ignores 0, which
        // is exactly right for a sum.
        self.sum_ns.add(ns);
    }

    /// Records a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Snapshot of per-bucket counts (cumulative, Prometheus-style),
    /// total count and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let raw: Vec<u64> = self.buckets.iter().map(|b| b.get()).collect();
        let mut cumulative = Vec::with_capacity(BUCKETS);
        let mut acc = 0u64;
        for v in &raw {
            acc += v;
            cumulative.push(acc);
        }
        HistogramSnapshot {
            cumulative,
            count: acc,
            sum_ns: self.sum_ns.get(),
        }
    }
}

/// Point-in-time view of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Cumulative counts per bucket; the last entry is the total count
    /// (the `+Inf` bucket).
    pub cumulative: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Registration takes a lock; reads and
/// writes of registered metrics never do (callers hold `Arc`s or use
/// the `Lazy*` handles which resolve once).
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Gets or creates the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Gets or creates the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Gets or creates the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// A deterministic point-in-time snapshot of every registered
    /// metric, keyed by name in sorted order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// The process-global registry. One daemon process hosts one engine, so
/// a single global keeps instrumentation reachable from every layer
/// (SAT sessions deep in worker threads included) without plumbing a
/// handle through each signature.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A counter handle resolved against the global registry on first use;
/// subsequent increments are one `OnceLock` load plus the sharded add.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn resolve(&self) -> &Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }

    pub fn inc(&self) {
        self.resolve().inc();
    }

    pub fn add(&self, n: u64) {
        self.resolve().add(n);
    }

    pub fn get(&self) -> u64 {
        self.resolve().get()
    }
}

/// A gauge handle resolved against the global registry on first use.
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn resolve(&self) -> &Gauge {
        self.cell.get_or_init(|| global().gauge(self.name))
    }

    pub fn set(&self, v: i64) {
        self.resolve().set(v);
    }

    pub fn inc(&self) {
        self.resolve().inc();
    }

    pub fn dec(&self) {
        self.resolve().dec();
    }

    pub fn get(&self) -> i64 {
        self.resolve().get()
    }
}

/// A histogram handle resolved against the global registry on first use.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn resolve(&self) -> &Histogram {
        self.cell.get_or_init(|| global().histogram(self.name))
    }

    pub fn record_ns(&self, ns: u64) {
        self.resolve().record_ns(ns);
    }

    pub fn record(&self, d: std::time::Duration) {
        self.resolve().record(d);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.resolve().snapshot()
    }
}

/// A deterministic point-in-time view of a registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Formats nanoseconds as an exact decimal number of seconds
/// (`1234567890ns` → `"1.234567890"`), so exposition text round-trips
/// without floating-point loss.
fn ns_to_seconds(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// Parses the exact-decimal seconds format back to nanoseconds.
fn seconds_to_ns(s: &str) -> Option<u64> {
    let (whole, frac) = match s.split_once('.') {
        Some((w, f)) => (w, f),
        None => (s, ""),
    };
    let whole: u64 = whole.parse().ok()?;
    let mut frac_ns = 0u64;
    let mut scale = 100_000_000u64;
    for c in frac.chars() {
        let d = c.to_digit(10)? as u64;
        frac_ns += d * scale;
        if scale == 1 {
            break;
        }
        scale /= 10;
    }
    whole.checked_mul(1_000_000_000)?.checked_add(frac_ns)
}

impl MetricsSnapshot {
    /// Prometheus-style text exposition. Histograms emit
    /// `_bucket{le="…"}` series with exact-decimal second bounds,
    /// plus `_sum` (exact-decimal seconds) and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (i, cum) in h.cumulative.iter().enumerate() {
                let le = if i < BUCKET_BOUNDS_NS.len() {
                    ns_to_seconds(BUCKET_BOUNDS_NS[i])
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", ns_to_seconds(h.sum_ns)));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }

    /// The snapshot as a canonical JSON object: counters and gauges as
    /// numbers, histograms as `{"buckets": [...], "count": n, "sum_ns": n}`.
    /// Hand-rolled (this crate is dependency-free); keys are emitted in
    /// sorted order so the output is canonical.
    pub fn render_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let mut parts = Vec::new();
        let mut counters = Vec::new();
        for (name, v) in &self.counters {
            counters.push(format!("{}: {}", quote(name), v));
        }
        parts.push(format!("\"counters\": {{{}}}", counters.join(", ")));
        let mut gauges = Vec::new();
        for (name, v) in &self.gauges {
            gauges.push(format!("{}: {}", quote(name), v));
        }
        parts.push(format!("\"gauges\": {{{}}}", gauges.join(", ")));
        let mut hists = Vec::new();
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h.cumulative.iter().map(|c| c.to_string()).collect();
            hists.push(format!(
                "{}: {{\"buckets\": [{}], \"count\": {}, \"sum_ns\": {}}}",
                quote(name),
                buckets.join(", "),
                h.count,
                h.sum_ns
            ));
        }
        parts.push(format!("\"histograms\": {{{}}}", hists.join(", ")));
        format!("{{{}}}", parts.join(", "))
    }
}

/// Parses Prometheus-style text exposition (the subset rendered by
/// [`MetricsSnapshot::render_prometheus`]) back into a snapshot.
/// Unknown lines are an error — the serve gauntlet uses this to detect
/// a malformed scrape.
pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
    // A histogram under assembly: (cumulative buckets, sum_ns, count).
    type PartialHistogram = (Vec<u64>, Option<u64>, Option<u64>);
    let mut snap = MetricsSnapshot::default();
    let mut current_type: Option<(String, String)> = None;
    let mut hist_parts: BTreeMap<String, PartialHistogram> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| err("missing metric name"))?;
            let ty = it.next().ok_or_else(|| err("missing metric type"))?;
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(err("unknown metric type"));
            }
            current_type = Some((name.to_string(), ty.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal exposition
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `<series> <value>`"))?;
        let (name, ty) = current_type
            .as_ref()
            .ok_or_else(|| err("sample before any # TYPE header"))?;
        match ty.as_str() {
            "counter" => {
                if series != name {
                    return Err(err("counter sample name mismatch"));
                }
                let v: u64 = value.parse().map_err(|_| err("bad counter value"))?;
                snap.counters.insert(name.clone(), v);
            }
            "gauge" => {
                if series != name {
                    return Err(err("gauge sample name mismatch"));
                }
                let v: i64 = value.parse().map_err(|_| err("bad gauge value"))?;
                snap.gauges.insert(name.clone(), v);
            }
            "histogram" => {
                let entry = hist_parts.entry(name.clone()).or_default();
                if let Some(rest) = series.strip_prefix(name.as_str()) {
                    if let Some(le) = rest
                        .strip_prefix("_bucket{le=\"")
                        .and_then(|s| s.strip_suffix("\"}"))
                    {
                        let expected_idx = entry.0.len();
                        let expected_le = if expected_idx < BUCKET_BOUNDS_NS.len() {
                            ns_to_seconds(BUCKET_BOUNDS_NS[expected_idx])
                        } else if expected_idx == BUCKET_BOUNDS_NS.len() {
                            "+Inf".to_string()
                        } else {
                            return Err(err("too many histogram buckets"));
                        };
                        if le != expected_le {
                            return Err(err("unexpected bucket bound"));
                        }
                        let v: u64 = value.parse().map_err(|_| err("bad bucket value"))?;
                        if let Some(&prev) = entry.0.last() {
                            if v < prev {
                                return Err(err("bucket counts not cumulative"));
                            }
                        }
                        entry.0.push(v);
                    } else if rest == "_sum" {
                        entry.1 =
                            Some(seconds_to_ns(value).ok_or_else(|| err("bad histogram sum"))?);
                    } else if rest == "_count" {
                        entry.2 = Some(value.parse().map_err(|_| err("bad histogram count"))?);
                    } else {
                        return Err(err("unknown histogram series"));
                    }
                } else {
                    return Err(err("histogram sample name mismatch"));
                }
            }
            _ => unreachable!(),
        }
    }
    for (name, (cumulative, sum_ns, count)) in hist_parts {
        if cumulative.len() != BUCKETS {
            return Err(format!("histogram {name}: wrong bucket count"));
        }
        let count = count.ok_or_else(|| format!("histogram {name}: missing _count"))?;
        let sum_ns = sum_ns.ok_or_else(|| format!("histogram {name}: missing _sum"))?;
        if *cumulative.last().unwrap() != count {
            return Err(format!("histogram {name}: +Inf bucket != count"));
        }
        snap.histograms.insert(
            name,
            HistogramSnapshot {
                cumulative,
                count,
                sum_ns,
            },
        );
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that write metrics against the kill-switch
    /// test: `METRICS_ENABLED` is process-global, and the test harness
    /// runs tests in parallel threads.
    static WRITE_LOCK: Mutex<()> = Mutex::new(());

    fn write_guard() -> std::sync::MutexGuard<'static, ()> {
        WRITE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The fixed-seed LCG used across the repo's property loops.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn counter_sums_across_threads() {
        let _g = write_guard();
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_inc_dec() {
        let _g = write_guard();
        let g = Gauge::new();
        g.set(5);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_bucketing_is_cumulative() {
        let _g = write_guard();
        let h = Histogram::new();
        h.record_ns(1); // first bucket
        h.record_ns(500_000); // 1ms bucket
        h.record_ns(u64::MAX); // +Inf
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(*s.cumulative.last().unwrap(), 3);
        assert_eq!(s.cumulative[0], 1);
        assert_eq!(s.cumulative[2], 2);
        // Cumulative counts never decrease.
        for w in s.cumulative.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn exact_seconds_round_trip() {
        for ns in [
            0u64,
            1,
            999_999_999,
            1_000_000_000,
            1_234_567_890,
            u64::MAX / 2,
        ] {
            assert_eq!(seconds_to_ns(&ns_to_seconds(ns)), Some(ns), "{ns}");
        }
    }

    /// Property loop: random snapshots survive the exposition
    /// render/parse round trip exactly.
    #[test]
    fn prometheus_round_trip_randomized() {
        let mut rng = Lcg(0x0b5e_55ed_5eed);
        for case in 0..200 {
            let mut snap = MetricsSnapshot::default();
            for i in 0..(rng.next() % 4) {
                snap.counters
                    .insert(format!("leapfrog_c{i}_total"), rng.next() % 1_000_000);
            }
            for i in 0..(rng.next() % 3) {
                snap.gauges
                    .insert(format!("leapfrog_g{i}"), (rng.next() % 2000) as i64 - 1000);
            }
            for i in 0..(rng.next() % 3) {
                let mut cumulative = Vec::with_capacity(BUCKETS);
                let mut acc = 0u64;
                for _ in 0..BUCKETS {
                    acc += rng.next() % 100;
                    cumulative.push(acc);
                }
                snap.histograms.insert(
                    format!("leapfrog_h{i}_seconds"),
                    HistogramSnapshot {
                        count: acc,
                        cumulative,
                        sum_ns: rng.next() % 1_000_000_000_000,
                    },
                );
            }
            let text = snap.render_prometheus();
            let parsed = parse_prometheus(&text)
                .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
            assert_eq!(parsed, snap, "case {case}");
        }
    }

    /// Property loop: recording random durations into two histograms
    /// and merging the snapshots equals recording them all into one.
    #[test]
    fn histogram_record_merge_randomized() {
        let _g = write_guard();
        let mut rng = Lcg(0xfeed_beef);
        for case in 0..100 {
            let a = Histogram::new();
            let b = Histogram::new();
            let all = Histogram::new();
            for _ in 0..(rng.next() % 64) {
                let ns = rng.next() % 100_000_000_000;
                if rng.next().is_multiple_of(2) {
                    a.record_ns(ns);
                } else {
                    b.record_ns(ns);
                }
                all.record_ns(ns);
            }
            let (sa, sb, sall) = (a.snapshot(), b.snapshot(), all.snapshot());
            let merged_cum: Vec<u64> = sa
                .cumulative
                .iter()
                .zip(&sb.cumulative)
                .map(|(x, y)| x + y)
                .collect();
            assert_eq!(merged_cum, sall.cumulative, "case {case}");
            assert_eq!(sa.count + sb.count, sall.count, "case {case}");
            assert_eq!(sa.sum_ns + sb.sum_ns, sall.sum_ns, "case {case}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_prometheus("leapfrog_x 1\n").is_err()); // no TYPE header
        assert!(parse_prometheus("# TYPE x widget\nx 1\n").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx notanumber\n").is_err());
    }

    #[test]
    fn kill_switch_drops_writes() {
        let _g = write_guard();
        let c = Counter::new();
        set_metrics_enabled(false);
        c.inc();
        set_metrics_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_typed() {
        let _g = write_guard();
        let r = MetricsRegistry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").inc();
        r.gauge("depth").set(3);
        r.histogram("lat_seconds").record_ns(5);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a_total", "b_total"]);
        assert_eq!(snap.counters["b_total"], 2);
        assert_eq!(snap.gauges["depth"], 3);
        assert_eq!(snap.histograms["lat_seconds"].count, 1);
        let text = snap.render_prometheus();
        assert_eq!(parse_prometheus(&text).unwrap(), snap);
        let json = snap.render_json();
        assert!(json.contains("\"a_total\": 1"), "{json}");
    }
}
