//! Dependency-free, offline-safe observability for the Leapfrog
//! engine: a metrics registry, structured span tracing, and a
//! slow-query log.
//!
//! This crate sits below every other Leapfrog crate (it depends only
//! on `std`), so the SMT solver, the incremental sessions, the engine
//! and the daemon can all write to one process-global registry and
//! trace collector without handle plumbing. Design constraints, in
//! order:
//!
//! 1. **Observability never changes results.** Nothing in here feeds
//!    back into solver decisions; certificates and witnesses are
//!    byte-identical with tracing on or off, at any thread count
//!    (asserted in `tests/pipeline.rs`).
//! 2. **Near-zero cost when off.** Counters are always on but are one
//!    relaxed branch + sharded `fetch_add`; spans are gated behind one
//!    relaxed load (`LEAPFROG_TRACE=0` is the default). The
//!    `obs_overhead` bench bin holds the registry to ≤5% on Table 2.
//! 3. **Deterministic reads.** Snapshots merge per-thread shards in a
//!    fixed order and key metrics by sorted name, so two snapshots of
//!    the same state render identical bytes.
//!
//! Env knobs: `LEAPFROG_TRACE=1` enables span recording;
//! `LEAPFROG_SLOW_QUERY_MS=n` arms the slow-query log (implies
//! tracing). Both are read at engine construction.

pub mod metrics;
pub mod trace;

pub use metrics::{
    global, metrics_enabled, parse_prometheus, set_metrics_enabled, Counter, Gauge, Histogram,
    HistogramSnapshot, LazyCounter, LazyGauge, LazyHistogram, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{
    collector, render_span_tree, set_enabled as set_trace_enabled, Phase, PhaseBreakdown,
    PhaseSnapshot, PhaseStat, SlowQuery, SpanEvent, SpanGuard, TraceCollector, PHASES,
};
