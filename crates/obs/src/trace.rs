//! Structured span tracing for the query lifecycle, plus the
//! slow-query log.
//!
//! The taxonomy mirrors the paper's pipeline: a root `query` span
//! contains `intern_pair` (with `sum` nested), `reach`,
//! `generation[n]` for each worklist generation, `guard_entailment`
//! for each discharged guard (with `cegar_round` nested per refinement
//! round), and finally `certificate` or `witness`. Span events are
//! recorded into a bounded in-memory ring with nanosecond timestamps
//! relative to the collector's epoch; the ring can be dumped as
//! canonical JSON and reassembled into a tree via parent links.
//!
//! Alongside the ring, the collector keeps a lock-free per-phase
//! aggregate (count + total nanoseconds per phase). The engine diffs
//! two [`PhaseSnapshot`]s around a query to attach a
//! [`PhaseBreakdown`] to its `RunStats` — that is what table2 emits
//! per row.
//!
//! Tracing is disabled by default (`LEAPFROG_TRACE=0`): [`span`]
//! returns `None` after a single relaxed atomic load, so the hot path
//! pays one branch. Setting `LEAPFROG_TRACE=1` — or any
//! `LEAPFROG_SLOW_QUERY_MS` threshold, which needs spans to build its
//! trees — turns recording on. Tracing never feeds back into solver
//! decisions, so certificates and witnesses are byte-identical with it
//! on or off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The phases of the query lifecycle, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Whole-query root span.
    Query,
    /// Parsing/translating and interning a parser pair.
    InternPair,
    /// Building the sum (disjoint union) automaton.
    Sum,
    /// Computing the reachable relation scope.
    Reach,
    /// One worklist generation (the span's `index` is `n`).
    Generation,
    /// One guard entailment discharge (a leaps-and-bounds check).
    GuardEntailment,
    /// One CEGAR refinement round inside an entailment.
    CegarRound,
    /// Assembling the equivalence certificate.
    Certificate,
    /// Lifting a countermodel into a concrete witness.
    Witness,
}

/// Every phase, in canonical order. Index in this array is the phase's
/// id in the aggregate table.
pub const PHASES: [Phase; 9] = [
    Phase::Query,
    Phase::InternPair,
    Phase::Sum,
    Phase::Reach,
    Phase::Generation,
    Phase::GuardEntailment,
    Phase::CegarRound,
    Phase::Certificate,
    Phase::Witness,
];

impl Phase {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Query => "query",
            Phase::InternPair => "intern_pair",
            Phase::Sum => "sum",
            Phase::Reach => "reach",
            Phase::Generation => "generation",
            Phase::GuardEntailment => "guard_entailment",
            Phase::CegarRound => "cegar_round",
            Phase::Certificate => "certificate",
            Phase::Witness => "witness",
        }
    }

    /// Inverse of [`Phase::as_str`].
    pub fn parse(s: &str) -> Option<Phase> {
        PHASES.iter().copied().find(|p| p.as_str() == s)
    }

    fn index(self) -> usize {
        PHASES.iter().position(|&p| p == self).unwrap()
    }
}

/// One completed span in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique span id (monotone, process-wide).
    pub id: u64,
    /// Parent span id, `0` for roots.
    pub parent: u64,
    pub phase: Phase,
    /// Phase-specific index (the `n` of `generation[n]`); `u64::MAX`
    /// when unindexed.
    pub index: u64,
    /// Start/end offsets from the collector epoch, nanoseconds.
    pub start_ns: u64,
    pub end_ns: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
}

impl SpanEvent {
    /// Display label: `generation[3]`, or just the phase name.
    pub fn label(&self) -> String {
        if self.index == u64::MAX {
            self.phase.as_str().to_string()
        } else {
            format!("{}[{}]", self.phase.as_str(), self.index)
        }
    }
}

/// Ring capacity in events. Big enough to hold the full span tree of
/// any single Table-2 query at default scale; old events are simply
/// overwritten, so memory stays bounded no matter how long the daemon
/// runs.
pub const RING_CAPACITY: usize = 65_536;

/// Maximum retained slow-query records; older ones are dropped.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// One slow-query record: the query's label, wall time, and its full
/// span tree rendered as canonical JSON.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Label supplied by the caller (row name, or a pair fingerprint).
    pub label: String,
    pub wall_ms: u64,
    pub threshold_ms: u64,
    /// Canonical JSON of the span tree (see [`render_span_tree`]).
    pub tree_json: String,
}

struct Ring {
    events: Vec<SpanEvent>,
    /// Next write position; also the count of events ever pushed.
    head: u64,
}

/// Lock-free per-phase totals plus the bounded event ring and slow log.
pub struct TraceCollector {
    enabled: AtomicBool,
    /// Slow-query threshold in ms; `u64::MAX` disables the slow log.
    slow_threshold_ms: AtomicU64,
    epoch: Instant,
    next_id: AtomicU64,
    phase_count: [AtomicU64; PHASES.len()],
    phase_ns: [AtomicU64; PHASES.len()],
    ring: Mutex<Ring>,
    slow_log: Mutex<Vec<SlowQuery>>,
}

thread_local! {
    /// Per-thread stack of open span ids, for parent links.
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Small dense thread id for span events.
    static THREAD_ID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

impl TraceCollector {
    fn new() -> TraceCollector {
        TraceCollector {
            enabled: AtomicBool::new(false),
            slow_threshold_ms: AtomicU64::new(u64::MAX),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            phase_count: Default::default(),
            phase_ns: Default::default(),
            ring: Mutex::new(Ring {
                events: Vec::new(),
                head: 0,
            }),
            slow_log: Mutex::new(Vec::new()),
        }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns span recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The slow-query threshold, if one is armed.
    pub fn slow_threshold_ms(&self) -> Option<u64> {
        match self.slow_threshold_ms.load(Ordering::Relaxed) {
            u64::MAX => None,
            ms => Some(ms),
        }
    }

    /// Arms (or disarms, with `None`) the slow-query log. Arming also
    /// enables span recording — trees can't be built otherwise.
    pub fn set_slow_threshold_ms(&self, ms: Option<u64>) {
        self.slow_threshold_ms
            .store(ms.unwrap_or(u64::MAX), Ordering::Relaxed);
        if ms.is_some() {
            self.set_enabled(true);
        }
    }

    /// Applies `LEAPFROG_TRACE` / `LEAPFROG_SLOW_QUERY_MS` from the
    /// environment. Called once by engine construction; later callers
    /// only ever widen (a set threshold is kept).
    pub fn apply_env(&self) {
        if let Ok(v) = std::env::var("LEAPFROG_TRACE") {
            self.set_enabled(v != "0" && !v.is_empty());
        }
        if let Ok(v) = std::env::var("LEAPFROG_SLOW_QUERY_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                self.set_slow_threshold_ms(Some(ms));
            }
        }
    }

    /// Opens a span. Returns `None` (one relaxed load) when disabled.
    pub fn span(&'static self, phase: Phase) -> Option<SpanGuard> {
        self.span_indexed(phase, u64::MAX)
    }

    /// Opens a span carrying a phase-specific index (`generation[n]`).
    pub fn span_indexed(&'static self, phase: Phase, index: u64) -> Option<SpanGuard> {
        if !self.enabled() {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        Some(SpanGuard {
            collector: self,
            id,
            parent,
            phase,
            index,
            start: Instant::now(),
        })
    }

    fn finish_span(&self, guard: &SpanGuard) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // The guard's span is the top of this thread's stack unless
            // spans were dropped out of order; search defensively.
            if let Some(pos) = s.iter().rposition(|&id| id == guard.id) {
                s.remove(pos);
            }
        });
        let end = Instant::now();
        let start_ns = guard.start.duration_since(self.epoch).as_nanos() as u64;
        let end_ns = end.duration_since(self.epoch).as_nanos() as u64;
        let i = guard.phase.index();
        self.phase_count[i].fetch_add(1, Ordering::Relaxed);
        self.phase_ns[i].fetch_add(end_ns - start_ns, Ordering::Relaxed);
        let event = SpanEvent {
            id: guard.id,
            parent: guard.parent,
            phase: guard.phase,
            index: guard.index,
            start_ns,
            end_ns,
            thread: THREAD_ID.with(|t| *t),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let pos = (ring.head % RING_CAPACITY as u64) as usize;
        if ring.events.len() < RING_CAPACITY {
            ring.events.push(event);
        } else {
            ring.events[pos] = event;
        }
        ring.head += 1;
    }

    /// Monotone count of events ever recorded; use as a mark to later
    /// extract "events since".
    pub fn event_mark(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).head
    }

    /// Events recorded at or after `mark` that are still in the ring,
    /// in recording order.
    pub fn events_since(&self, mark: u64) -> Vec<SpanEvent> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let len = ring.events.len() as u64;
        let oldest = ring.head - len;
        let from = mark.max(oldest);
        (from..ring.head)
            .map(|seq| ring.events[(seq % RING_CAPACITY as u64) as usize].clone())
            .collect()
    }

    /// Number of events currently held (≤ [`RING_CAPACITY`]).
    pub fn ring_len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// Point-in-time per-phase totals.
    pub fn phase_snapshot(&self) -> PhaseSnapshot {
        let mut counts = [0u64; PHASES.len()];
        let mut nanos = [0u64; PHASES.len()];
        for i in 0..PHASES.len() {
            counts[i] = self.phase_count[i].load(Ordering::Relaxed);
            nanos[i] = self.phase_ns[i].load(Ordering::Relaxed);
        }
        PhaseSnapshot { counts, nanos }
    }

    /// Records a slow query, bounding the log to [`SLOW_LOG_CAPACITY`].
    pub fn push_slow(&self, record: SlowQuery) {
        let mut log = self.slow_log.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() == SLOW_LOG_CAPACITY {
            log.remove(0);
        }
        log.push(record);
    }

    /// The retained slow-query records, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// The process-global collector (one engine per process; see
/// [`crate::metrics::global`] for the rationale).
pub fn collector() -> &'static TraceCollector {
    static GLOBAL: OnceLock<TraceCollector> = OnceLock::new();
    GLOBAL.get_or_init(TraceCollector::new)
}

/// Shorthand: open a span on the global collector.
pub fn span(phase: Phase) -> Option<SpanGuard> {
    collector().span(phase)
}

/// Shorthand: open an indexed span on the global collector.
pub fn span_indexed(phase: Phase, index: u64) -> Option<SpanGuard> {
    collector().span_indexed(phase, index)
}

/// Shorthand: toggle the global collector.
pub fn set_enabled(on: bool) {
    collector().set_enabled(on)
}

/// Shorthand: is the global collector recording?
pub fn enabled() -> bool {
    collector().enabled()
}

/// An open span; records the event when dropped.
pub struct SpanGuard {
    collector: &'static TraceCollector,
    id: u64,
    parent: u64,
    phase: Phase,
    index: u64,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.collector.finish_span(self);
    }
}

/// Cumulative per-phase totals; diff two to get a [`PhaseBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    counts: [u64; PHASES.len()],
    nanos: [u64; PHASES.len()],
}

impl PhaseSnapshot {
    /// The all-zero snapshot.
    pub fn zero() -> PhaseSnapshot {
        PhaseSnapshot {
            counts: [0; PHASES.len()],
            nanos: [0; PHASES.len()],
        }
    }

    /// Totals accumulated since `base` (which must be an earlier
    /// snapshot of the same collector).
    pub fn delta(&self, base: &PhaseSnapshot) -> PhaseBreakdown {
        let mut entries = Vec::new();
        for (i, phase) in PHASES.iter().enumerate() {
            let count = self.counts[i].saturating_sub(base.counts[i]);
            let nanos = self.nanos[i].saturating_sub(base.nanos[i]);
            if count > 0 || nanos > 0 {
                entries.push(PhaseStat {
                    phase: *phase,
                    count,
                    nanos,
                });
            }
        }
        PhaseBreakdown { entries }
    }
}

/// Count and total time for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    pub phase: Phase,
    pub count: u64,
    pub nanos: u64,
}

/// Per-query (or per-run) phase totals, attached to `RunStats`. Empty
/// when tracing is off. Entries are kept in canonical phase order and
/// only present when nonzero, so equal breakdowns compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    pub entries: Vec<PhaseStat>,
}

impl PhaseBreakdown {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `other` into `self`, phase-wise.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        if other.is_empty() {
            return;
        }
        let mut counts = [0u64; PHASES.len()];
        let mut nanos = [0u64; PHASES.len()];
        for e in self.entries.iter().chain(&other.entries) {
            let i = e.phase.index();
            counts[i] += e.count;
            nanos[i] += e.nanos;
        }
        self.entries.clear();
        for (i, phase) in PHASES.iter().enumerate() {
            if counts[i] > 0 || nanos[i] > 0 {
                self.entries.push(PhaseStat {
                    phase: *phase,
                    count: counts[i],
                    nanos: nanos[i],
                });
            }
        }
    }

    /// One-line human summary: `guard_entailment 12x 3.4ms · …`.
    pub fn summary(&self) -> String {
        self.entries
            .iter()
            .map(|e| {
                format!(
                    "{} {}x {:.1}ms",
                    e.phase.as_str(),
                    e.count,
                    e.nanos as f64 / 1e6
                )
            })
            .collect::<Vec<_>>()
            .join(" · ")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a set of span events as a canonical JSON forest, nesting
/// children under parents by their recorded links. Events whose parent
/// is absent from the set (or `0`) become roots. Siblings keep
/// recording order.
pub fn render_span_tree(events: &[SpanEvent]) -> String {
    fn render_node(events: &[SpanEvent], at: usize, out: &mut String) {
        let e = &events[at];
        out.push_str(&format!(
            "{{\"span\": \"{}\", \"phase\": \"{}\", \"start_ns\": {}, \"end_ns\": {}, \"thread\": {}",
            json_escape(&e.label()),
            e.phase.as_str(),
            e.start_ns,
            e.end_ns,
            e.thread
        ));
        let children: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, c)| c.parent == e.id)
            .map(|(i, _)| i)
            .collect();
        if !children.is_empty() {
            out.push_str(", \"children\": [");
            for (n, c) in children.iter().enumerate() {
                if n > 0 {
                    out.push_str(", ");
                }
                render_node(events, *c, out);
            }
            out.push(']');
        }
        out.push('}');
    }
    let ids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.id).collect();
    let roots: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.parent == 0 || !ids.contains(&e.parent))
        .map(|(i, _)| i)
        .collect();
    let mut out = String::from("[");
    for (n, r) in roots.iter().enumerate() {
        if n > 0 {
            out.push_str(", ");
        }
        render_node(events, *r, &mut out);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this binary share the global collector; serialize the
    /// ones that toggle it.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    fn trace_guard() -> std::sync::MutexGuard<'static, ()> {
        TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_is_none() {
        let _g = trace_guard();
        set_enabled(false);
        assert!(span(Phase::Sum).is_none());
    }

    #[test]
    fn spans_nest_by_parent_links() {
        let _g = trace_guard();
        set_enabled(true);
        let mark = collector().event_mark();
        {
            let _q = span(Phase::Query);
            {
                let _g1 = span_indexed(Phase::Generation, 0);
                let _e = span(Phase::GuardEntailment);
            }
            let _c = span(Phase::Certificate);
        }
        set_enabled(false);
        let events = collector().events_since(mark);
        assert_eq!(events.len(), 4);
        // Innermost spans close first.
        assert_eq!(events[0].phase, Phase::GuardEntailment);
        assert_eq!(events[1].phase, Phase::Generation);
        assert_eq!(events[1].label(), "generation[0]");
        let query = events.iter().find(|e| e.phase == Phase::Query).unwrap();
        assert_eq!(events[0].parent, events[1].id);
        assert_eq!(events[1].parent, query.id);
        let tree = render_span_tree(&events);
        assert!(tree.contains("\"span\": \"query\""), "{tree}");
        assert!(tree.contains("\"children\""), "{tree}");
        // The query root must contain the generation which contains
        // the entailment: check nesting depth by order of appearance.
        let qi = tree.find("\"query\"").unwrap();
        let gi = tree.find("\"generation[0]\"").unwrap();
        let ei = tree.find("\"guard_entailment\"").unwrap();
        assert!(qi < gi && gi < ei, "{tree}");
    }

    #[test]
    fn phase_delta_counts_only_new_spans() {
        let _g = trace_guard();
        set_enabled(true);
        let base = collector().phase_snapshot();
        {
            let _s = span(Phase::Reach);
        }
        {
            let _s = span(Phase::Reach);
        }
        let after = collector().phase_snapshot();
        set_enabled(false);
        let d = after.delta(&base);
        let reach = d.entries.iter().find(|e| e.phase == Phase::Reach).unwrap();
        assert_eq!(reach.count, 2);
    }

    #[test]
    fn ring_is_bounded_under_overflow() {
        let _g = trace_guard();
        set_enabled(true);
        let before_mark = collector().event_mark();
        for _ in 0..(RING_CAPACITY + 1000) {
            let _s = span(Phase::CegarRound);
        }
        set_enabled(false);
        assert!(collector().ring_len() <= RING_CAPACITY);
        let events = collector().events_since(before_mark);
        // Overflow evicted the oldest: we get at most a full ring back.
        assert!(events.len() <= RING_CAPACITY);
        // The newest events survive.
        let newest = collector().event_mark();
        assert_eq!(collector().events_since(newest - 10).len(), 10);
    }

    #[test]
    fn slow_log_is_bounded() {
        let _g = trace_guard();
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            collector().push_slow(SlowQuery {
                label: format!("q{i}"),
                wall_ms: i as u64,
                threshold_ms: 0,
                tree_json: "[]".to_string(),
            });
        }
        let log = collector().slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        // Oldest dropped, newest kept.
        assert_eq!(
            log.last().unwrap().label,
            format!("q{}", SLOW_LOG_CAPACITY + 4)
        );
    }

    #[test]
    fn phase_names_round_trip() {
        for p in PHASES {
            assert_eq!(Phase::parse(p.as_str()), Some(p));
        }
        assert_eq!(Phase::parse("nonsense"), None);
    }

    #[test]
    fn breakdown_merge_is_phasewise() {
        let mut a = PhaseBreakdown {
            entries: vec![PhaseStat {
                phase: Phase::Sum,
                count: 1,
                nanos: 10,
            }],
        };
        let b = PhaseBreakdown {
            entries: vec![
                PhaseStat {
                    phase: Phase::Sum,
                    count: 2,
                    nanos: 5,
                },
                PhaseStat {
                    phase: Phase::Witness,
                    count: 1,
                    nanos: 7,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].phase, Phase::Sum);
        assert_eq!(a.entries[0].count, 3);
        assert_eq!(a.entries[0].nanos, 15);
        assert_eq!(a.entries[1].phase, Phase::Witness);
        assert!(!a.summary().is_empty());
    }
}
