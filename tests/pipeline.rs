//! Integration tests for the guard-indexed, parallel entailment pipeline:
//! bit-identical results at every thread count, index-vs-linear-scan
//! agreement, cross-query blast-cache correctness, and the witness
//! regression corpus loop.

use leapfrog::{Checker, Options, Outcome};
use leapfrog_logic::lower::{entails_filtered, entails_stateless, lower, lower_filtered};
use leapfrog_logic::store::RelationStore;
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::surface::parse;
use leapfrog_smt::{CheckResult, SmtSolver};
use leapfrog_suite::corpus::WitnessCorpus;
use leapfrog_suite::differential::check_cross_validate_and_record;
use leapfrog_suite::utility::{mpls, sloppy_strict, state_rearrangement, vlan_init};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn opts(threads: usize) -> Options {
    Options {
        threads,
        ..Options::default()
    }
}

/// The equivalent seed pairs: the utility case studies plus two surface
/// toys with distinct state layouts.
fn equivalent_pairs() -> Vec<(&'static str, Automaton, StateId, Automaton, StateId)> {
    let mut out = Vec::new();
    for bench in [
        state_rearrangement::state_rearrangement_benchmark(),
        vlan_init::vlan_init_benchmark(),
        mpls::mpls_benchmark(),
    ] {
        out.push((
            bench.name,
            bench.left,
            bench.left_start,
            bench.right,
            bench.right_start,
        ));
    }
    let a = parse(
        "parser A { state s { extract(h, 4);
           select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
    )
    .unwrap();
    let b = parse(
        "parser B { state s { extract(pre, 2); goto t }
                    state t { extract(suf, 2);
           select(pre) { 0b11 => accept; _ => reject; } } }",
    )
    .unwrap();
    let sa = a.state_by_name("s").unwrap();
    let sb = b.state_by_name("s").unwrap();
    out.push(("toy chunking", a, sa, b, sb));
    out
}

#[test]
fn certificates_are_byte_identical_across_thread_counts() {
    for (name, left, ql, right, qr) in equivalent_pairs() {
        let mut jsons = Vec::new();
        for threads in THREAD_COUNTS {
            let mut checker = Checker::new(&left, ql, &right, qr, opts(threads));
            match checker.run() {
                Outcome::Equivalent(cert) => jsons.push(cert.to_json()),
                other => panic!("{name}: expected Equivalent at threads={threads}, got {other:?}"),
            }
            assert_eq!(checker.stats().threads, threads.max(1));
        }
        assert!(
            jsons.windows(2).all(|w| w[0] == w[1]),
            "{name}: certificate JSON differs across thread counts"
        );
    }
}

#[test]
fn witnesses_are_byte_identical_across_thread_counts() {
    // Two refuted pairs: the paper's sanity check and a store-dependent
    // self-comparison. The rendered witness (packet, stores, trace) must
    // not depend on the thread count.
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let store_dep = parse(
        "parser A {
           state s { extract(g, 1);
             select(h[0:0]) { 0b1 => accept; _ => reject; } }
           header h : 4;
         }",
    )
    .unwrap();
    let sd = store_dep.state_by_name("s").unwrap();
    let pairs: Vec<(&str, &Automaton, StateId, &Automaton, StateId)> = vec![
        ("sloppy vs strict", &sloppy, ql, &strict, qr),
        ("store dependent", &store_dep, sd, &store_dep, sd),
    ];
    for (name, left, ql, right, qr) in pairs {
        let mut rendered = Vec::new();
        for threads in THREAD_COUNTS {
            let mut checker = Checker::new(left, ql, right, qr, opts(threads));
            match checker.run() {
                Outcome::NotEquivalent(refutation) => {
                    let w = refutation.witness().unwrap_or_else(|| {
                        panic!("{name}: witness must confirm at threads={threads}")
                    });
                    assert!(w.check());
                    rendered.push(format!("{w}"));
                }
                other => {
                    panic!("{name}: expected NotEquivalent at threads={threads}, got {other:?}")
                }
            }
        }
        assert!(
            rendered.windows(2).all(|w| w[0] == w[1]),
            "{name}: witness rendering differs across thread counts:\n{rendered:?}"
        );
    }
}

#[test]
fn results_are_byte_identical_with_tracing_on_and_off() {
    // The flight recorder's core invariant: span tracing observes the
    // pipeline but never steers it. Every combination of tracing
    // {off, on} × threads {1, 4} must render the same certificate bytes
    // — and the same witness bytes on a refuted pair.
    let was_enabled = leapfrog_obs::trace::enabled();
    let (name, left, ql, right, qr) = equivalent_pairs().remove(0);
    let mut certs = Vec::new();
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let sl = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let st = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut witnesses = Vec::new();
    for tracing in [false, true] {
        leapfrog_obs::set_trace_enabled(tracing);
        for threads in [1, 4] {
            let mut checker = Checker::new(&left, ql, &right, qr, opts(threads));
            match checker.run() {
                Outcome::Equivalent(cert) => certs.push(cert.to_json()),
                other => panic!(
                    "{name}: expected Equivalent at threads={threads} tracing={tracing}, \
                     got {other:?}"
                ),
            }
            let mut refuter = Checker::new(&sloppy, sl, &strict, st, opts(threads));
            match refuter.run() {
                Outcome::NotEquivalent(refutation) => {
                    let w = refutation.witness().unwrap_or_else(|| {
                        panic!("witness must confirm at threads={threads} tracing={tracing}")
                    });
                    witnesses.push(format!("{w}"));
                }
                other => panic!(
                    "sloppy vs strict: expected NotEquivalent at threads={threads} \
                     tracing={tracing}, got {other:?}"
                ),
            }
        }
    }
    leapfrog_obs::set_trace_enabled(was_enabled);
    assert!(
        certs.windows(2).all(|w| w[0] == w[1]),
        "{name}: certificate JSON differs across tracing/thread combinations"
    );
    assert!(
        witnesses.windows(2).all(|w| w[0] == w[1]),
        "witness rendering differs across tracing/thread combinations"
    );
}

#[test]
fn certificates_and_witnesses_identical_across_session_gc_settings() {
    // The guard sessions' clause-budget GC must be invisible in results:
    // certificates byte-identical with GC off, at the default ratio (and
    // default clause-count floor), and at a pathological ratio with the
    // floor removed so rebuilds actually fire — at several thread counts.
    let gc_settings: [(Option<f64>, u64); 3] = [
        (None, leapfrog::engine::DEFAULT_SESSION_GC_FLOOR),
        (Some(4.0), leapfrog::engine::DEFAULT_SESSION_GC_FLOOR),
        (Some(0.001), 0),
    ];
    let mut forced_rebuilds = 0u64;
    for (name, left, ql, right, qr) in equivalent_pairs() {
        let mut jsons = Vec::new();
        for (gc, floor) in gc_settings {
            for threads in [1, 2] {
                let opts = Options {
                    threads,
                    session_gc_ratio: gc,
                    session_gc_floor: floor,
                    ..Options::default()
                };
                let mut checker = Checker::new(&left, ql, &right, qr, opts);
                match checker.run() {
                    Outcome::Equivalent(cert) => jsons.push(cert.to_json()),
                    other => panic!("{name}: expected Equivalent at gc={gc:?}, got {other:?}"),
                }
                let stats = checker.stats();
                if gc.is_none() {
                    assert_eq!(
                        stats.session_rebuilds(),
                        0,
                        "{name}: GC off must not rebuild"
                    );
                }
                if gc == Some(0.001) && floor == 0 {
                    forced_rebuilds += stats.session_rebuilds();
                }
                assert!(
                    stats.queries.blocks_validated <= stats.queries.blocks_considered,
                    "{name}: the oracle can only skip validations: {stats:?}"
                );
            }
        }
        assert!(
            jsons.windows(2).all(|w| w[0] == w[1]),
            "{name}: certificate JSON differs across session-GC settings"
        );
    }
    assert!(
        forced_rebuilds > 0,
        "a near-zero GC ratio must force context rebuilds somewhere"
    );

    // Witnesses too: the sanity pair must render identically under every
    // GC setting.
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut rendered = Vec::new();
    for (gc, floor) in gc_settings {
        let opts = Options {
            session_gc_ratio: gc,
            session_gc_floor: floor,
            ..Options::default()
        };
        let mut checker = Checker::new(&sloppy, ql, &strict, qr, opts);
        match checker.run() {
            Outcome::NotEquivalent(refutation) => {
                let w = refutation
                    .witness()
                    .unwrap_or_else(|| panic!("witness must confirm at gc={gc:?}"));
                assert!(w.check());
                rendered.push(format!("{w}"));
            }
            other => panic!("expected NotEquivalent at gc={gc:?}, got {other:?}"),
        }
    }
    assert!(
        rendered.windows(2).all(|w| w[0] == w[1]),
        "witness rendering differs across session-GC settings:\n{rendered:?}"
    );
}

#[test]
fn results_are_byte_identical_with_lbd_management_on_and_off() {
    // The LBD two-tier learnt-clause policy only changes which learnt
    // clauses the SAT core retains — never a verdict, certificate byte, or
    // witness byte. Certificates, witnesses, and the query trajectory must
    // be identical with the policy disabled (activity-only deletion).
    for (name, left, ql, right, qr) in equivalent_pairs() {
        let mut jsons = Vec::new();
        let mut queries = Vec::new();
        for lbd in [true, false] {
            let opts = Options {
                sat_lbd: lbd,
                ..opts(2)
            };
            let mut checker = Checker::new(&left, ql, &right, qr, opts);
            match checker.run() {
                Outcome::Equivalent(cert) => jsons.push(cert.to_json()),
                other => panic!("{name}: expected Equivalent at lbd={lbd}, got {other:?}"),
            }
            queries.push(checker.stats().queries.queries);
        }
        assert_eq!(
            jsons[0], jsons[1],
            "{name}: certificate JSON differs with LBD management off"
        );
        assert_eq!(
            queries[0], queries[1],
            "{name}: query trajectory differs with LBD management off"
        );
    }
    // And a refuted pair: the rendered witness must survive the toggle.
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut rendered = Vec::new();
    for lbd in [true, false] {
        let opts = Options {
            sat_lbd: lbd,
            ..opts(2)
        };
        let mut checker = Checker::new(&sloppy, ql, &strict, qr, opts);
        match checker.run() {
            Outcome::NotEquivalent(refutation) => {
                let w = refutation
                    .witness()
                    .unwrap_or_else(|| panic!("witness must confirm at lbd={lbd}"));
                assert!(w.check());
                rendered.push(format!("{w}"));
            }
            other => panic!("expected NotEquivalent at lbd={lbd}, got {other:?}"),
        }
    }
    assert_eq!(
        rendered[0], rendered[1],
        "witness rendering differs with LBD management off"
    );
}

#[test]
fn results_are_byte_identical_across_portfolio_lane_counts() {
    // SAT portfolio racing is a pure wall-clock optimization: verdicts are
    // semantic and models always come from the canonical lane, so
    // certificates and the query trajectory must be byte-identical with
    // the portfolio off, at 2 lanes and at 4 lanes — across thread counts,
    // with LBD management disabled, and under a forced session GC.
    for (name, left, ql, right, qr) in equivalent_pairs() {
        let mut jsons = Vec::new();
        // Query trajectories are only comparable at a fixed thread count
        // (parallel runs add speculative checks and merge rechecks), so
        // they are grouped by every knob except the lane count.
        let mut queries: std::collections::HashMap<String, Vec<u64>> =
            std::collections::HashMap::new();
        let mut variants: Vec<Options> = Vec::new();
        for lanes in [0usize, 2, 4] {
            for threads in [1usize, 4] {
                variants.push(Options {
                    sat_portfolio: lanes,
                    threads,
                    ..Options::default()
                });
            }
        }
        // The interaction axes: racing with the LBD policy flipped, and
        // racing while the clause-budget GC churns contexts.
        variants.push(Options {
            sat_portfolio: 2,
            sat_lbd: false,
            ..opts(2)
        });
        variants.push(Options {
            sat_portfolio: 2,
            session_gc_ratio: Some(0.001),
            session_gc_floor: 0,
            ..opts(2)
        });
        // Zero racing floor: every entailment solve actually races, so the
        // byte-identity assertions bite on real races (with the default
        // floor, small fixtures mostly solve solo below it).
        for lanes in [2usize, 4] {
            variants.push(Options {
                sat_portfolio: lanes,
                sat_portfolio_min_clauses: 0,
                ..opts(1)
            });
        }
        for o in variants {
            let label = format!(
                "lanes={} floor={} threads={} lbd={} gc={:?}",
                o.sat_portfolio,
                o.sat_portfolio_min_clauses,
                o.threads,
                o.sat_lbd,
                o.session_gc_ratio
            );
            let mut checker = Checker::new(&left, ql, &right, qr, o);
            match checker.run() {
                Outcome::Equivalent(cert) => jsons.push(cert.to_json()),
                other => panic!("{name}: expected Equivalent at {label}, got {other:?}"),
            }
            let group = format!(
                "threads={} lbd={} gc={:?}",
                o.threads, o.sat_lbd, o.session_gc_ratio
            );
            queries
                .entry(group)
                .or_default()
                .push(checker.stats().queries.queries);
            let portfolio = &checker.stats().queries.portfolio;
            if o.sat_portfolio >= 2 {
                assert_eq!(
                    portfolio.lanes, o.sat_portfolio as u64,
                    "{name}: configured lanes must surface in RunStats at {label}"
                );
                assert!(
                    portfolio.races + portfolio.solo > 0,
                    "{name}: portfolio solve counters must be wired at {label}"
                );
                if o.sat_portfolio_min_clauses == 0 {
                    assert!(
                        portfolio.races > 0,
                        "{name}: a zero racing floor must make solves race at {label}"
                    );
                }
            } else {
                assert_eq!(
                    portfolio.races, 0,
                    "{name}: no races may be recorded with the portfolio off"
                );
            }
        }
        assert!(
            jsons.windows(2).all(|w| w[0] == w[1]),
            "{name}: certificate JSON differs across portfolio lane counts"
        );
        for (group, counts) in &queries {
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{name}: query trajectory differs across lane counts at {group}: {counts:?}"
            );
        }
    }
}

#[test]
fn witnesses_are_byte_identical_across_portfolio_lane_counts() {
    // The refuted side of the same contract: the rendered witness (packet,
    // stores, trace) must not depend on the portfolio lane count.
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut rendered = Vec::new();
    for lanes in [0usize, 2, 4] {
        for threads in [1usize, 4] {
            // Zero racing floor so racing variants really race (the floor
            // is irrelevant with the portfolio off).
            let o = Options {
                sat_portfolio: lanes,
                sat_portfolio_min_clauses: 0,
                threads,
                ..Options::default()
            };
            let mut checker = Checker::new(&sloppy, ql, &strict, qr, o);
            match checker.run() {
                Outcome::NotEquivalent(refutation) => {
                    let w = refutation.witness().unwrap_or_else(|| {
                        panic!("witness must confirm at lanes={lanes} threads={threads}")
                    });
                    assert!(w.check());
                    rendered.push(format!("{w}"));
                }
                other => panic!(
                    "expected NotEquivalent at lanes={lanes} threads={threads}, got {other:?}"
                ),
            }
            if lanes >= 2 {
                assert!(
                    checker.stats().queries.portfolio.races > 0,
                    "zero racing floor must make solves race at lanes={lanes} threads={threads}"
                );
            }
        }
    }
    assert!(
        rendered.windows(2).all(|w| w[0] == w[1]),
        "witness rendering differs across portfolio lane counts:\n{rendered:?}"
    );
}

#[test]
fn oracle_skips_validations_on_a_real_row() {
    // The variable-indexed oracle must actually save validation solves on
    // a row with quantified premises (blocks_validated < blocks_considered
    // would be an equality if every candidate model were validated against
    // every block every round). The Edge applicability self-comparison has
    // enough recurring support valuations to exhibit skipping even at the
    // small scale.
    let bench = leapfrog_suite::Benchmark::self_comparison(
        "Edge",
        leapfrog_suite::applicability::edge(leapfrog_suite::Scale::Small),
        "parse_eth",
    );
    let mut checker = Checker::new(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
        Options::default(),
    );
    assert!(checker.run().is_equivalent());
    let q = &checker.stats().queries;
    assert!(q.blocks_considered > 0, "{q:?}");
    assert!(q.blocks_validated < q.blocks_considered, "{q:?}");
}

#[test]
fn relation_store_matches_linear_scan_entailment() {
    // Take a real computed relation R; for every conjunct, the guard-index
    // fetch must yield the same entailment verdict as the historical
    // linear scan over all of R.
    let bench = state_rearrangement::state_rearrangement_benchmark();
    let mut checker = Checker::new(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
        Options::default(),
    );
    let aut = checker.sum_automaton().clone();
    let cert = match checker.run() {
        Outcome::Equivalent(cert) => cert,
        other => panic!("expected Equivalent, got {other:?}"),
    };
    let store: RelationStore = cert.relation.iter().cloned().collect();
    assert_eq!(store.len(), cert.relation.len());
    let mut solver = SmtSolver::new();
    for rho in &cert.relation {
        let linear = entails_stateless(&aut, &cert.relation, rho);
        let indexed = entails_filtered(&aut, &store.matching(rho.guard), rho, &mut solver);
        assert_eq!(linear, indexed, "disagreement on {}", rho.display(&aut));
        assert!(linear, "R must entail its own conjuncts");
        // The lowered queries are structurally identical too.
        let q_linear = lower(&aut, &cert.relation, rho);
        let q_indexed = lower_filtered(&aut, &store.matching(rho.guard), rho);
        assert_eq!(q_linear.filtered_premises, q_indexed.filtered_premises);
        assert_eq!(q_linear.goal, q_indexed.goal);
    }
}

#[test]
fn blast_cache_consistency_against_stateless_solver() {
    // The same query family through a caching solver and the stateless
    // (uncached) entry point must agree on every verdict, while the
    // caching solver actually hits.
    let bench = state_rearrangement::state_rearrangement_benchmark();
    let mut checker = Checker::new(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
        Options::default(),
    );
    let aut = checker.sum_automaton().clone();
    let cert = match checker.run() {
        Outcome::Equivalent(cert) => cert,
        other => panic!("expected Equivalent, got {other:?}"),
    };
    let mut cached = SmtSolver::new();
    for rho in &cert.relation {
        let q = lower(&aut, &cert.relation, rho);
        let with_cache = matches!(cached.check_valid(&q.decls, &q.goal), CheckResult::Valid);
        let stateless = matches!(
            leapfrog_smt::check_valid(&q.decls, &q.goal),
            CheckResult::Valid
        );
        assert_eq!(with_cache, stateless);
        assert!(with_cache);
    }
    if cached.shared_cache().is_disabled() {
        return; // LEAPFROG_NO_BLAST_CACHE=1 ablation run: no hits.
    }
    let stats = cached.stats();
    assert!(
        stats.blast_cache_hits > 0,
        "recurring premises must hit the cache: {stats:?}"
    );
}

#[test]
fn corpus_feedback_loop_records_and_replays() {
    let a = parse(
        "parser A { state s { extract(h, 2);
           select(h) { 0b11 => accept; _ => reject; } } }",
    )
    .unwrap();
    let b = parse(
        "parser B { state s { extract(h, 2);
           select(h) { 0b10 => accept; _ => reject; } } }",
    )
    .unwrap();
    let sa = a.state_by_name("s").unwrap();
    let sb = b.state_by_name("s").unwrap();
    let mut corpus = WitnessCorpus::new();
    // First run records the confirmed minimized witness.
    let outcome =
        check_cross_validate_and_record(&a, sa, &b, sb, Options::default(), "toy", &mut corpus)
            .expect("cross-validation succeeds");
    assert!(matches!(outcome, Outcome::NotEquivalent(_)));
    assert_eq!(corpus.len(), 1);
    // Second run re-exercises the recorded packet and still refutes.
    let outcome =
        check_cross_validate_and_record(&a, sa, &b, sb, Options::default(), "toy", &mut corpus)
            .expect("regression replay succeeds");
    assert!(matches!(outcome, Outcome::NotEquivalent(_)));
    // A self-comparison under the same corpus name: the recorded packet
    // cannot distinguish a parser from itself, so the equivalence verdict
    // passes the corpus cross-check.
    let outcome =
        check_cross_validate_and_record(&a, sa, &a, sa, Options::default(), "toy", &mut corpus)
            .expect("self-comparison passes the corpus cross-check");
    assert!(outcome.is_equivalent());
    // But a refuted pair whose recorded packets have all stopped
    // distinguishing it is a regression and must be reported: simulate by
    // replacing the corpus with a packet that does not distinguish a / b.
    let mut stale = WitnessCorpus::from_text("pair toy\npacket 00\nleft -\nright -\n").unwrap();
    let err =
        check_cross_validate_and_record(&a, sa, &b, sb, Options::default(), "toy", &mut stale);
    assert!(
        err.is_err(),
        "a corpus whose packets stopped distinguishing a refuted pair must fail"
    );
}
