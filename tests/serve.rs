//! The serving acceptance contract: certificates and witnesses must be
//! **byte-identical** across three execution paths —
//!
//! 1. in-process (`check_language_equivalence`, canonically encoded),
//! 2. over the wire (an in-process `leapfrogd` server on a loopback
//!    socket), and
//! 3. cold-restart-from-saved-state (a brand-new engine reloading a
//!    state directory written by `Engine::save_state`),
//!
//! at `LEAPFROG_THREADS ∈ {1, 4}` and under `LEAPFROG_WARM_CAP=1`
//! eviction pressure. Persistence and eviction may only change
//! wall-clock, never a byte.

use leapfrog::checker::check_language_equivalence;
use leapfrog::{Engine, EngineConfig};
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_serve::proto::outcome_to_value;
use leapfrog_serve::{Client, Server, ServerOptions};
use leapfrog_suite::utility::{mpls, sloppy_strict, state_rearrangement};
use leapfrog_suite::{Benchmark, Scale};

/// The rows the cross-path comparison drives: two equivalent utility
/// rows, the refuted sanity pair, and a mutant whose witness crosses
/// several headers. (The full standard table runs in the CI gauntlet;
/// this test keeps the in-tree matrix affordable.)
fn rows() -> Vec<(String, Automaton, StateId, Automaton, StateId, bool)> {
    let mut rows: Vec<(String, Automaton, StateId, Automaton, StateId, bool)> = Vec::new();
    for b in [
        state_rearrangement::state_rearrangement_benchmark(),
        mpls::mpls_benchmark(),
    ] {
        let Benchmark {
            name,
            left,
            left_start,
            right,
            right_start,
            expect_equivalent,
        } = b;
        rows.push((
            name.to_string(),
            left,
            left_start,
            right,
            right_start,
            expect_equivalent,
        ));
    }
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    rows.push(("sanity".into(), sloppy, ql, strict, qr, false));
    let m = leapfrog_suite::mutants::mutant_benchmarks().remove(0);
    rows.push((
        m.name.to_string(),
        m.left,
        m.left_start,
        m.right,
        m.right_start,
        false,
    ));
    rows
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "leapfrog-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn outcomes_byte_identical_in_process_wire_and_restart() {
    let rows = rows();
    for threads in [1usize, 4] {
        // Path 1: one-shot in-process, canonically encoded.
        let expected: Vec<String> = rows
            .iter()
            .map(|(name, l, ql, r, qr, expect_eq)| {
                let outcome = check_language_equivalence(l, *ql, r, *qr);
                assert_eq!(
                    outcome.is_equivalent(),
                    *expect_eq,
                    "{name}: unexpected verdict"
                );
                outcome_to_value(&outcome).render()
            })
            .collect();

        // Path 2: over the wire, through an in-process server. Inline
        // specs carry nothing but surface text, so drive the wire with
        // the named sanity row where possible and inline for the rest —
        // here every row is checked via a fresh engine inside the
        // server, so we use the named rows the server resolves itself.
        let state_dir = unique_dir(&format!("wire-{threads}"));
        let _ = std::fs::remove_dir_all(&state_dir);
        let server = Server::bind(
            "127.0.0.1:0",
            ServerOptions {
                config: EngineConfig::from_env().threads(threads),
                state_dir: Some(state_dir.clone()),
                scale: Scale::Small,
                workers: 1,
                ..ServerOptions::default()
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        let mut client = Client::connect(addr).expect("connect");
        for ((name, _, _, _, _, _), expected_json) in rows.iter().zip(&expected) {
            let wire_name = if name == "sanity" {
                // The sanity pair is not a standard row; check it inline.
                continue;
            } else {
                name.clone()
            };
            let reply = client.check_named(&wire_name).expect("wire check");
            assert_eq!(
                &reply.outcome_json, expected_json,
                "{name}: wire bytes differ from in-process at threads={threads}"
            );
        }
        // Re-check one row warm over the wire: still identical bytes.
        let warm = client.check_named(&rows[0].0).expect("warm wire check");
        assert_eq!(&warm.outcome_json, &expected[0], "warm wire differs");
        assert!(
            warm.stats.entailment_memo_hits > 0,
            "the daemon's second check must replay its memo: {:?}",
            warm.stats
        );
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");

        // Path 3: cold restart from the state the daemon just saved. A
        // 1-worker fleet persists under `shard-0/` in the state dir.
        let mut restarted = Engine::new(
            EngineConfig::from_env()
                .threads(threads)
                .with_state_dir(state_dir.join("shard-0")),
        );
        assert!(
            restarted.state_report().is_some(),
            "the daemon must have saved reloadable state"
        );
        let mut replayed = 0u64;
        for ((name, l, ql, r, qr, _), expected_json) in rows.iter().zip(&expected) {
            let outcome = restarted.check(l, *ql, r, *qr);
            assert_eq!(
                &outcome_to_value(&outcome).render(),
                expected_json,
                "{name}: restart bytes differ at threads={threads}"
            );
            let s = restarted.last_run_stats();
            replayed += s.entailment_memo_hits + s.queries.inst_ledger_hits;
        }
        assert!(
            replayed > 0,
            "a restart from saved state must replay warm verdicts (threads={threads})"
        );
        std::fs::remove_dir_all(&state_dir).ok();
    }
}

#[test]
fn warm_cap_eviction_never_changes_wire_bytes() {
    // The same rows under LEAPFROG_WARM_CAP=1-style pressure: a server
    // whose engine keeps at most ONE warm state / pair / session alive
    // must still answer byte-identically, twice in a row.
    let rows = rows();
    let expected: Vec<String> = rows
        .iter()
        .map(|(_, l, ql, r, qr, _)| {
            outcome_to_value(&check_language_equivalence(l, *ql, r, *qr)).render()
        })
        .collect();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            config: EngineConfig::from_env().threads(1).warm_capacity(1),
            state_dir: None,
            scale: Scale::Small,
            workers: 1,
            ..ServerOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect(addr).expect("connect");
    for round in 0..2 {
        for ((name, _, _, _, _, _), expected_json) in rows.iter().zip(&expected) {
            if name == "sanity" {
                continue;
            }
            let reply = client.check_named(name).expect("wire check");
            assert_eq!(
                &reply.outcome_json, expected_json,
                "{name}: eviction changed wire bytes (round {round})"
            );
        }
    }
    let stats = client.engine_stats().expect("stats");
    let evictions = |k: &str| {
        leapfrog::json::get(&stats, k)
            .ok()
            .and_then(|v| leapfrog::json::as_usize(v).ok())
            .unwrap_or(0)
    };
    assert!(
        evictions("warm_evictions") > 0 && evictions("pair_evictions") > 0,
        "capacity 1 across several pairs must evict: {}",
        stats.render()
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn metrics_and_slow_log_answer_over_the_wire() {
    // The flight-recorder wire surface: arm the slow-query log at 0 ms
    // (every query qualifies), run a named check, and both introspection
    // requests must answer. The registry and trace collector are
    // process-global and shared with every other test in this binary, so
    // all counter assertions are ≥, never ==.
    let collector = leapfrog_obs::collector();
    let prior_threshold = collector.slow_threshold_ms();
    let prior_enabled = leapfrog_obs::trace::enabled();
    collector.set_slow_threshold_ms(Some(0));

    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect(addr).expect("connect");
    let row = state_rearrangement::state_rearrangement_benchmark();
    client.check_named(row.name).expect("wire check");

    let (text, json_view) = client.metrics().expect("metrics request");
    let snap = leapfrog_obs::parse_prometheus(&text).expect("exposition parses");
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(counter("leapfrog_checks_total") >= 1, "checks counter live");
    assert!(
        counter("leapfrog_entailment_checks_total") >= 1,
        "entailment counter live"
    );
    assert!(
        counter("leapfrog_connections_total") >= 1 && counter("leapfrog_requests_total") >= 2,
        "connection counters live"
    );
    // The JSON view is the same snapshot: spot-check one counter.
    let json_checks = leapfrog::json::get(&json_view, "counters")
        .and_then(|c| leapfrog::json::get(c, "leapfrog_checks_total"))
        .ok()
        .and_then(|v| leapfrog::json::as_usize(v).ok())
        .expect("json view carries counters");
    assert_eq!(json_checks as u64, counter("leapfrog_checks_total"));

    let slow = client.slow_log().expect("slow_log request");
    let entries = leapfrog::json::as_arr(&slow).expect("slow log is an array");
    let named = entries.iter().any(|e| {
        leapfrog::json::get(e, "label")
            .ok()
            .and_then(|l| leapfrog::json::as_str(l).ok())
            == Some(row.name)
    });
    assert!(
        named,
        "the 0 ms threshold must capture the named row's span tree: {}",
        slow.render()
    );
    for e in entries {
        assert!(
            leapfrog::json::get(e, "spans").is_ok(),
            "every slow record embeds its span tree"
        );
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    collector.set_slow_threshold_ms(prior_threshold);
    leapfrog_obs::set_trace_enabled(prior_enabled);
}

#[test]
fn inline_wire_checks_match_local_parsing() {
    let left = "parser A { state s { extract(h, 4);
                  select(h[0:1]) { 0b11 => accept; _ => reject; } } }";
    let right = "parser B { state s { extract(pre, 2); goto t }
                            state t { extract(suf, 2);
                  select(pre) { 0b11 => accept; _ => reject; } } }";
    let l = leapfrog_p4a::surface::parse(left).unwrap();
    let r = leapfrog_p4a::surface::parse(right).unwrap();
    let (ql, qr) = (l.state_by_name("s").unwrap(), r.state_by_name("s").unwrap());
    let expected = outcome_to_value(&check_language_equivalence(&l, ql, &r, qr)).render();

    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect(addr).expect("connect");
    let reply = client
        .check_inline(left, "s", right, "s")
        .expect("inline wire check");
    assert!(reply.outcome.is_equivalent());
    assert_eq!(reply.outcome_json, expected, "inline wire bytes differ");
    // Unknown rows and malformed parsers come back as protocol errors,
    // not connection drops.
    assert!(client.check_named("No Such Row").is_err());
    assert!(client
        .check_inline("parser Broken {", "s", right, "s")
        .is_err());
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
