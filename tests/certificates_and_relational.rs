//! Integration tests for certificates (serialization, tamper detection)
//! and the relational case studies (§7.1).

use leapfrog::{certificate, Certificate, Checker, Options, Outcome};
use leapfrog_logic::reach::reachable_pairs;
use leapfrog_suite::utility::{mpls, sloppy_strict};

fn mpls_certificate() -> (leapfrog_p4a::Automaton, Certificate) {
    let r = mpls::reference();
    let v = mpls::vectorized();
    let mut checker = Checker::new(
        &r,
        r.state_by_name("q1").unwrap(),
        &v,
        v.state_by_name("q3").unwrap(),
        Options::default(),
    );
    match checker.run() {
        Outcome::Equivalent(cert) => (checker.sum_automaton().clone(), cert),
        other => panic!("expected equivalence: {other:?}"),
    }
}

#[test]
fn mpls_certificate_roundtrips_through_json() {
    let (aut, cert) = mpls_certificate();
    let json = cert.to_json();
    assert!(json.contains("\"relation\""));
    let back = Certificate::from_json(&json).expect("valid json");
    certificate::check(&aut, &back).expect("re-parsed certificate still checks");
}

#[test]
fn truncated_relation_is_rejected() {
    let (aut, mut cert) = mpls_certificate();
    // Dropping conjuncts must break closure or the init entailment.
    let n = cert.relation.len();
    cert.relation.truncate(n / 2);
    assert!(certificate::check(&aut, &cert).is_err());
}

#[test]
fn swapped_leaps_flag_is_rejected() {
    let (aut, mut cert) = mpls_certificate();
    // A with-leaps relation is generally not closed under bit-level WPs.
    cert.leaps = false;
    assert!(certificate::check(&aut, &cert).is_err());
}

#[test]
fn external_filtering_verifies_and_is_marked_nonstandard() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let reach = reachable_pairs(checker.sum_automaton(), &[checker.root()], true);
    let init = sloppy_strict::external_filter_init(checker.sum_info(), &reach);
    checker.replace_init(init);
    match checker.run() {
        Outcome::Equivalent(cert) => {
            assert!(!cert.standard_init);
            certificate::check(checker.sum_automaton(), &cert)
                .expect("pre-bisimulation certificate checks");
        }
        other => panic!("external filtering failed: {other:?}"),
    }
}

#[test]
fn store_correspondence_verifies() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let init = sloppy_strict::store_correspondence_init(checker.sum_info());
    checker.replace_init(init);
    assert!(checker.run().is_equivalent());
}

#[test]
fn plain_equivalence_of_sloppy_strict_fails() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let outcome = checker.run();
    assert!(matches!(outcome, Outcome::NotEquivalent(_)));
    // The refutation must carry a confirmed, replayable witness packet.
    let w = leapfrog_suite::differential::confirm_refutation(&outcome)
        .expect("sloppy/strict witness must confirm");
    assert!(w.check());
}
