//! Differential testing of the two certificate checkers: the engine-side
//! `leapfrog::certificate::check` (fast, shares lowering and solver code
//! with the prover) and the independent `leapfrog-certcheck` trust root
//! (own parser, own WP, own solver). Any disagreement — on a valid
//! certificate or on an adversarially mutated one — is a bug in one of
//! them.
//!
//! The adversarial corpus mutates every Table-2 certificate four ways:
//! dropping a relation conjunct, weakening a conjunct's formula, swapping
//! the query to a different guard, and corrupting the leap flag. Both
//! checkers must reject each mutant with the same error class.

use leapfrog::{certificate, Certificate, CertificateError, Checker, Options, Outcome};
use leapfrog_bench::rows::standard_benchmarks;
use leapfrog_logic::confrel::Pure;
use leapfrog_p4a::Automaton;
use leapfrog_suite::{Benchmark, Scale};

/// Runs the prover on a benchmark and returns the sum automaton plus the
/// equivalence certificate.
fn certify(bench: &Benchmark) -> (Automaton, Certificate) {
    let mut checker = Checker::new(
        &bench.left,
        bench.left_start,
        &bench.right,
        bench.right_start,
        Options::default(),
    );
    match checker.run() {
        Outcome::Equivalent(cert) => (checker.sum_automaton().clone(), cert),
        other => panic!("{}: expected equivalence, got {other:?}", bench.name),
    }
}

/// The engine checker's error class, named identically to
/// [`leapfrog_certcheck::CertCheckError::class`].
fn engine_class(e: &CertificateError) -> &'static str {
    match e {
        CertificateError::MissingAcceptanceCondition(_) => "missing_acceptance_condition",
        CertificateError::InitNotEntailed(_) => "init_not_entailed",
        CertificateError::NotClosed(_) => "not_closed",
        CertificateError::QueryNotEntailed(_) => "query_not_entailed",
    }
}

/// Checks `cert` through both checkers and asserts they return the same
/// verdict (and, on rejection, the same error class). Returns the agreed
/// error class, or `None` if both accepted.
fn differential(aut: &Automaton, cert: &Certificate, what: &str) -> Option<&'static str> {
    let engine = certificate::check(aut, cert);
    let indep = leapfrog_certcheck::check_json(aut, &cert.to_json());
    match (&engine, &indep) {
        (Ok(()), Ok(())) => None,
        (Err(e), Err(i)) => {
            let (ec, ic) = (engine_class(e), i.class());
            assert_eq!(
                ec, ic,
                "{what}: checkers disagree on the error class (engine: {e}, certcheck: {i})"
            );
            Some(ec)
        }
        _ => panic!("{what}: verdicts disagree (engine: {engine:?}, certcheck: {indep:?})"),
    }
}

#[test]
fn certcheck_accepts_every_table2_certificate() {
    for bench in standard_benchmarks(Scale::Small) {
        let (aut, cert) = certify(&bench);
        leapfrog_certcheck::check_json(&aut, &cert.to_json()).unwrap_or_else(|e| {
            panic!(
                "{}: trust root rejected a valid certificate: {e}",
                bench.name
            )
        });
    }
}

#[test]
fn adversarial_mutants_are_rejected_identically() {
    for bench in standard_benchmarks(Scale::Small) {
        let (aut, cert) = certify(&bench);
        let name = bench.name;

        // Mutation 1: drop a relation conjunct. Some conjunct must be
        // load-bearing — find the first whose removal the engine rejects,
        // then require the trust root to agree on the class.
        let mut rejected = false;
        for i in 0..cert.relation.len() {
            let mut m = cert.clone();
            m.relation.remove(i);
            if certificate::check(&aut, &m).is_err() {
                let class = differential(&aut, &m, &format!("{name}: drop conjunct {i}"))
                    .expect("engine rejected");
                assert!(
                    matches!(
                        class,
                        "init_not_entailed" | "not_closed" | "query_not_entailed"
                    ),
                    "{name}: dropping a conjunct gave unexpected class {class}"
                );
                rejected = true;
                break;
            }
        }
        assert!(rejected, "{name}: every relation conjunct was redundant");

        // Mutation 2: weaken a conjunct's formula to `true`. The weakened
        // premise must break some entailment downstream.
        let mut rejected = false;
        for i in 0..cert.relation.len() {
            if cert.relation[i].phi == Pure::tt() {
                continue;
            }
            let mut m = cert.clone();
            m.relation[i].phi = Pure::tt();
            if certificate::check(&aut, &m).is_err() {
                let class = differential(&aut, &m, &format!("{name}: weaken conjunct {i}"))
                    .expect("engine rejected");
                assert!(
                    matches!(class, "init_not_entailed" | "not_closed"),
                    "{name}: weakening a conjunct gave unexpected class {class}"
                );
                rejected = true;
                break;
            }
        }
        assert!(rejected, "{name}: no conjunct formula was load-bearing");

        // Mutation 3: swap the query onto a mid-parse guard with a
        // nontrivial conjunct — the trivial query cannot entail it.
        let mut rejected = false;
        for rho in &cert.relation {
            if rho.guard == cert.query.guard || rho.phi == Pure::tt() {
                continue;
            }
            let mut m = cert.clone();
            m.query.guard = rho.guard;
            if certificate::check(&aut, &m).is_err() {
                differential(&aut, &m, &format!("{name}: swap query guard"))
                    .expect("engine rejected");
                rejected = true;
                break;
            }
        }
        assert!(rejected, "{name}: no guard swap was rejected");

        // Mutation 4: corrupt the leap flag. A with-leaps relation is not
        // closed under single-bit WPs (and vice versa).
        let mut m = cert.clone();
        m.leaps = !m.leaps;
        let class = differential(&aut, &m, &format!("{name}: corrupt leap flag"))
            .unwrap_or_else(|| panic!("{name}: corrupting the leap flag was not rejected"));
        assert!(
            matches!(
                class,
                "missing_acceptance_condition" | "init_not_entailed" | "not_closed"
            ),
            "{name}: leap corruption gave unexpected class {class}"
        );
    }
}

#[test]
fn certcheck_accepts_the_relational_verification_certificate() {
    // The store-correspondence study (§7.1): a non-standard init whose
    // conjuncts relate whole headers at acceptance. Its certificate has
    // a different shape from the language-equivalence rows — wide
    // header-to-header equalities threaded through every obligation —
    // and the trust root must re-discharge it too (the `table2` binary
    // rechecks it on every run).
    use leapfrog_suite::utility::sloppy_strict;

    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let init = sloppy_strict::store_correspondence_init(checker.sum_info());
    checker.replace_init(init);
    let cert = match checker.run() {
        Outcome::Equivalent(cert) => cert,
        other => panic!("relational verification failed: {other:?}"),
    };
    let aut = checker.sum_automaton().clone();
    assert_eq!(differential(&aut, &cert, "relational verification"), None);
}

#[test]
fn certcheck_accepts_the_translation_validation_certificate() {
    // The hardware round-trip (§7.2): the Edge parser against its
    // compiled-and-back-translated twin — the largest sum automaton any
    // certificate in the repo is stated over.
    let (edge, start, back, back_start) =
        leapfrog_bench::rows::translation_validation_pair(Scale::Small);
    let bench = Benchmark {
        name: "Translation Validation",
        left: edge,
        left_start: start,
        right: back,
        right_start: back_start,
        expect_equivalent: true,
    };
    let (aut, cert) = certify(&bench);
    assert_eq!(differential(&aut, &cert, "translation validation"), None);
}

#[test]
fn checkers_agree_on_nonstandard_init_certificates() {
    // The external-filtering study produces a certificate with
    // `standard_init = false` — the acceptance-compatibility sweep is
    // skipped and the custom init conjuncts carry the proof. Both
    // checkers must accept it, and both must reject the same certificate
    // re-labelled as standard (its init no longer covers acceptance).
    use leapfrog_logic::reach::reachable_pairs;
    use leapfrog_suite::utility::sloppy_strict;

    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let reach = reachable_pairs(checker.sum_automaton(), &[checker.root()], true);
    let init = sloppy_strict::external_filter_init(checker.sum_info(), &reach);
    checker.replace_init(init);
    let cert = match checker.run() {
        Outcome::Equivalent(cert) => cert,
        other => panic!("external filtering failed: {other:?}"),
    };
    let aut = checker.sum_automaton().clone();
    assert!(!cert.standard_init);
    assert_eq!(differential(&aut, &cert, "external filtering"), None);

    let mut m = cert.clone();
    m.standard_init = true;
    let class = differential(&aut, &m, "external filtering relabelled standard")
        .expect("relabelled certificate must be rejected");
    assert_eq!(class, "missing_acceptance_condition");
}
