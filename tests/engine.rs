//! Integration tests for the persistent `Engine` API: one-shot, cold
//! engine, warm engine and batch paths must produce byte-identical
//! certificates and witnesses at every thread count; warm reuse must be
//! observable in the stats; and the session-GC clause floor must only
//! ever reduce rebuild churn.

use leapfrog::checker::check_language_equivalence;
use leapfrog::{Engine, EngineConfig, Options, Outcome, QuerySpec};
use leapfrog_p4a::ast::{Automaton, StateId};
use leapfrog_p4a::surface::parse;
use leapfrog_suite::utility::{sloppy_strict, state_rearrangement};

/// An equivalent pair with distinct state layouts (entailments fire).
fn chunking_pair() -> (Automaton, StateId, Automaton, StateId) {
    let a = parse(
        "parser A { state s { extract(h, 4);
           select(h[0:1]) { 0b11 => accept; _ => reject; } } }",
    )
    .unwrap();
    let b = parse(
        "parser B { state s { extract(pre, 2); goto t }
                    state t { extract(suf, 2);
           select(pre) { 0b11 => accept; _ => reject; } } }",
    )
    .unwrap();
    let sa = a.state_by_name("s").unwrap();
    let sb = b.state_by_name("s").unwrap();
    (a, sa, b, sb)
}

/// The paper's refuted sanity pair.
fn refuted_pair() -> (Automaton, StateId, Automaton, StateId) {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    (sloppy, ql, strict, qr)
}

fn cert_json(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Equivalent(cert) => cert.to_json(),
        other => panic!("expected Equivalent, got {other:?}"),
    }
}

fn witness_text(outcome: &Outcome) -> String {
    let w = outcome.witness().expect("confirmed witness");
    assert!(w.check());
    format!("{w}")
}

#[test]
fn certificates_identical_one_shot_cold_warm_and_batch() {
    // Satellite contract: one-shot `check_language_equivalence`, a cold
    // engine, a warm engine (same pair twice and inside a batch) agree
    // byte-for-byte at threads ∈ {1, 4}.
    let (a, sa, b, sb) = chunking_pair();
    let one_shot = cert_json(&check_language_equivalence(&a, sa, &b, sb));
    for threads in [1usize, 4] {
        let mut engine = EngineConfig::from_env().threads(threads).build();
        let cold = cert_json(&engine.check(&a, sa, &b, sb));
        assert_eq!(
            one_shot, cold,
            "cold engine differs from one-shot at threads={threads}"
        );
        let warm = cert_json(&engine.check(&a, sa, &b, sb));
        assert_eq!(
            one_shot, warm,
            "warm engine differs from one-shot at threads={threads}"
        );
        // And inside a batch: the same pair appears twice among others.
        let specs = vec![
            QuerySpec::new("pair-1", &a, sa, &b, sb),
            QuerySpec::new("self", &a, sa, &a, sa),
            QuerySpec::new("pair-2", &a, sa, &b, sb),
        ];
        let outcomes = engine.check_batch(&specs);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(one_shot, cert_json(&outcomes[0]), "threads={threads}");
        assert_eq!(one_shot, cert_json(&outcomes[2]), "threads={threads}");
        assert!(outcomes[1].is_equivalent());
    }
}

#[test]
fn witnesses_identical_one_shot_cold_warm_and_batch() {
    let (l, ql, r, qr) = refuted_pair();
    let one_shot = witness_text(&check_language_equivalence(&l, ql, &r, qr));
    for threads in [1usize, 4] {
        let mut engine = EngineConfig::from_env().threads(threads).build();
        let cold = witness_text(&engine.check(&l, ql, &r, qr));
        assert_eq!(one_shot, cold, "cold witness differs at threads={threads}");
        let warm = witness_text(&engine.check(&l, ql, &r, qr));
        assert_eq!(one_shot, warm, "warm witness differs at threads={threads}");
        let specs = vec![
            QuerySpec::new("sanity-1", &l, ql, &r, qr),
            QuerySpec::new("sanity-2", &l, ql, &r, qr),
        ];
        let outcomes = engine.check_batch(&specs);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                one_shot,
                witness_text(o),
                "batch witness {i} differs at threads={threads}"
            );
        }
    }
}

#[test]
fn portfolio_engines_agree_with_the_single_solver_byte_for_byte() {
    // The persistent-engine side of the portfolio contract: cold, warm and
    // batch runs through portfolio-racing engines (2 and 4 lanes) must
    // reproduce the single-solver certificate and witness bytes exactly,
    // at threads ∈ {1, 4}.
    let (a, sa, b, sb) = chunking_pair();
    let (l, ql, r, qr) = refuted_pair();
    let base_cert = cert_json(&check_language_equivalence(&a, sa, &b, sb));
    let base_witness = witness_text(&check_language_equivalence(&l, ql, &r, qr));
    for lanes in [2usize, 4] {
        for threads in [1usize, 4] {
            // Zero racing floor: every entailment solve actually races,
            // so the byte-identity claim is tested on real races (with
            // the default floor, small fixtures mostly solve solo).
            let mut engine = EngineConfig::new()
                .sat_portfolio(lanes)
                .sat_portfolio_min_clauses(0)
                .threads(threads)
                .build();
            let cold = cert_json(&engine.check(&a, sa, &b, sb));
            assert_eq!(
                base_cert, cold,
                "cold certificate differs at lanes={lanes} threads={threads}"
            );
            let warm = cert_json(&engine.check(&a, sa, &b, sb));
            assert_eq!(
                base_cert, warm,
                "warm certificate differs at lanes={lanes} threads={threads}"
            );
            let cold_w = witness_text(&engine.check(&l, ql, &r, qr));
            assert_eq!(
                base_witness, cold_w,
                "witness differs at lanes={lanes} threads={threads}"
            );
            let specs = vec![
                QuerySpec::new("cert", &a, sa, &b, sb),
                QuerySpec::new("sanity", &l, ql, &r, qr),
            ];
            let outcomes = engine.check_batch(&specs);
            assert_eq!(base_cert, cert_json(&outcomes[0]));
            assert_eq!(base_witness, witness_text(&outcomes[1]));
        }
    }
}

#[test]
fn warm_reuse_is_observable_in_stats() {
    let (a, sa, b, sb) = chunking_pair();
    let mut engine = EngineConfig::new().threads(1).build();
    assert!(engine.check(&a, sa, &b, sb).is_equivalent());
    let cold = engine.last_run_stats().clone();
    assert_eq!(cold.sessions_reused, 0, "first run is cold: {cold:?}");
    assert_eq!(cold.sum_cache_hits, 0);
    assert!(cold.entailment_checks > 0);

    assert!(engine.check(&a, sa, &b, sb).is_equivalent());
    let warm = engine.last_run_stats().clone();
    assert!(warm.sessions_reused > 0, "{warm:?}");
    assert_eq!(warm.sum_cache_hits, 1, "{warm:?}");
    assert_eq!(warm.reach_cache_hits, 1, "{warm:?}");
    assert_eq!(
        warm.entailment_memo_hits, warm.entailment_checks,
        "an identical re-check replays every verdict from the memo: {warm:?}"
    );
    assert_eq!(
        warm.queries.queries, 0,
        "a fully memoized run issues no session queries: {warm:?}"
    );

    let engine_stats = engine.stats();
    assert_eq!(engine_stats.checks, 2);
    assert_eq!(engine_stats.pairs_interned, 1);
    assert!(engine_stats.sum_cache_hits >= 1);
    assert!(engine_stats.sessions_reused > 0);
}

#[test]
fn batch_on_one_thread_reuses_across_duplicate_specs() {
    // The acceptance bar: reuse must be observable "even on 1 CPU".
    let (a, sa, b, sb) = chunking_pair();
    let mut engine = EngineConfig::new().threads(1).build();
    let specs = vec![
        QuerySpec::new("q1", &a, sa, &b, sb),
        QuerySpec::new("q2", &a, sa, &b, sb),
        QuerySpec::new("q3", &a, sa, &b, sb),
    ];
    let outcomes = engine.check_batch(&specs);
    assert!(outcomes.iter().all(Outcome::is_equivalent));
    let stats = engine.last_run_stats();
    assert!(stats.sessions_reused > 0, "{stats:?}");
    assert!(stats.entailment_memo_hits > 0, "{stats:?}");
    assert_eq!(stats.sum_cache_hits, 2, "two of three specs intern-hit");
    assert_eq!(engine.stats().batches, 1);
}

#[test]
fn engine_serves_different_pairs_without_cross_talk() {
    // A warm engine answering query A must not perturb query B (and vice
    // versa): interleaved checks agree with fresh-engine answers.
    let (a, sa, b, sb) = chunking_pair();
    let (l, ql, r, qr) = refuted_pair();
    let fresh_cert = cert_json(
        &EngineConfig::from_env()
            .threads(1)
            .build()
            .check(&a, sa, &b, sb),
    );
    let fresh_wit = witness_text(
        &EngineConfig::from_env()
            .threads(1)
            .build()
            .check(&l, ql, &r, qr),
    );
    let mut engine = EngineConfig::from_env().threads(1).build();
    for round in 0..3 {
        let c = cert_json(&engine.check(&a, sa, &b, sb));
        let w = witness_text(&engine.check(&l, ql, &r, qr));
        assert_eq!(fresh_cert, c, "round {round}");
        assert_eq!(fresh_wit, w, "round {round}");
    }
    assert_eq!(engine.stats().pairs_interned, 2);
}

#[test]
fn gc_floor_reduces_rebuilds_on_small_rows_without_changing_results() {
    // Satellite contract: with the default ratio-4 budget, a small
    // cache-served row must rebuild no *more* under the 512-clause floor
    // than without it — and certificates must match exactly.
    let bench = state_rearrangement::state_rearrangement_benchmark();
    let run = |floor: u64| {
        let opts = Options {
            threads: 1,
            session_gc_ratio: Some(4.0),
            session_gc_floor: floor,
            ..Options::default()
        };
        let mut checker = leapfrog::Checker::new(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            opts,
        );
        let cert = cert_json(&checker.run());
        (cert, checker.stats().session_rebuilds())
    };
    let (cert_no_floor, rebuilds_no_floor) = run(0);
    let (cert_floor, rebuilds_floor) = run(leapfrog::engine::DEFAULT_SESSION_GC_FLOOR);
    assert_eq!(
        cert_no_floor, cert_floor,
        "the floor must not change results"
    );
    assert!(
        rebuilds_floor <= rebuilds_no_floor,
        "the floor can only reduce rebuild churn: {rebuilds_floor} > {rebuilds_no_floor}"
    );
}

#[test]
fn config_from_options_round_trips() {
    let opts = Options {
        leaps: false,
        reach_pruning: false,
        early_stop: false,
        max_iterations: Some(7),
        threads: 3,
        strict_witness: true,
        session_gc_ratio: Some(2.5),
        session_gc_floor: 64,
        blast_cache: false,
        sat_lbd: false,
        sat_portfolio: 3,
        sat_portfolio_min_clauses: 17,
    };
    let cfg = EngineConfig::from_options(&opts);
    let back = cfg.options();
    assert_eq!(format!("{opts:?}"), format!("{back:?}"));
    // The engine honours the blast-cache setting from typed config alone.
    let engine = Engine::new(cfg);
    assert!(engine.shared_cache().is_disabled());
    let engine = EngineConfig::new().build();
    // With pure defaults the cache is enabled regardless of environment —
    // unless the ablation env var is set for this whole test process.
    if std::env::var("LEAPFROG_NO_BLAST_CACHE").as_deref() != Ok("1") {
        assert!(!engine.shared_cache().is_disabled());
    }
}

#[test]
fn named_checks_feed_the_witness_sink() {
    // The engine's witness sink records confirmed refutation witnesses
    // from named and batched checks. (The suite's WitnessCorpus is the
    // production sink; a shared-state recorder keeps the assertion
    // simple.)
    #[derive(Clone, Default)]
    struct RecordingSink(std::sync::Arc<std::sync::Mutex<Vec<String>>>);
    impl leapfrog::WitnessSink for RecordingSink {
        fn record(&mut self, name: &str, witness: &leapfrog_repro::cex::Witness) -> bool {
            assert!(witness.check());
            self.0.lock().unwrap().push(name.to_string());
            true
        }
    }
    let (l, ql, r, qr) = refuted_pair();
    let recorder = RecordingSink::default();
    let mut engine = EngineConfig::new().threads(1).build();
    engine.attach_witness_sink(Box::new(recorder.clone()));
    engine.check_named("sanity", &l, ql, &r, qr);
    let specs = vec![QuerySpec::new("sanity-batch", &l, ql, &r, qr)];
    engine.check_batch(&specs);
    assert!(engine.take_witness_sink().is_some());
    let names = recorder.0.lock().unwrap().clone();
    assert_eq!(
        names,
        vec!["sanity".to_string(), "sanity-batch".to_string()]
    );
}
