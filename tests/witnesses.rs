//! Integration tests for the counterexample witness engine: every
//! non-equivalence verdict produced across the utility and applicability
//! suites must carry a *confirmed* witness — concrete initial stores plus a
//! minimized packet which, replayed through the explicit semantics from
//! both initial configurations, reproduces a concrete disagreement.

use leapfrog::{Checker, Options, Outcome};
use leapfrog_cex::Disagreement;
use leapfrog_logic::confrel::{BitExpr, ConfRel, Pure, Side};
use leapfrog_logic::templates::{Template, TemplatePair};
use leapfrog_suite::differential::{check_and_cross_validate, confirm_refutation};
use leapfrog_suite::utility::{mpls, sloppy_strict, vlan_init};
use leapfrog_suite::{applicability, Scale};

/// Asserts that the outcome is a refutation with a confirmed, minimized,
/// replayable witness, and returns a readable rendering for debugging.
fn assert_confirmed_witness(name: &str, outcome: &Outcome) {
    let w = confirm_refutation(outcome)
        .unwrap_or_else(|e| panic!("{name}: refutation not confirmed: {e}"));
    assert!(
        w.check(),
        "{name}: witness replay must reproduce the disagreement"
    );
    assert!(
        w.packet.len() <= w.original_bits,
        "{name}: minimization may not grow the packet"
    );
    // Minimality spot check: the empty packet must not already disagree
    // unless the minimizer kept it (in which case it is trivially minimal).
    if !w.packet.is_empty() {
        assert!(
            !w.packet_disagrees(&leapfrog_bitvec::BitVec::new())
                || matches!(w.disagreement, Disagreement::InitRelation { .. }),
            "{name}: a non-empty minimized packet implies the empty packet agrees"
        );
    }
}

#[test]
fn sloppy_vs_strict_refutation_carries_confirmed_witness() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let outcome = check_and_cross_validate(&sloppy, ql, &strict, qr, Options::default())
        .expect("cross-validation must succeed");
    assert_confirmed_witness("sloppy vs strict", &outcome);
    let w = outcome.witness().unwrap();
    // The disagreement needs a full ether + ipv6 parse on the sloppy side:
    // 112 + 288 bits, which minimization cannot shrink below.
    assert_eq!(w.packet.len(), 400, "{w}");
    match w.disagreement {
        Disagreement::Acceptance {
            left_accepts,
            right_accepts,
        } => {
            assert!(
                left_accepts && !right_accepts,
                "sloppy accepts what strict rejects"
            );
        }
        ref other => panic!("expected an acceptance disagreement, got {other:?}"),
    }
}

#[test]
fn uninitialized_vlan_bug_yields_store_witness() {
    // The buggy Figure 9 variant forgets `vlan := 0`; self-comparison must
    // refute with a witness whose two initial stores differ on the header
    // the parser wrongly reads.
    let buggy = vlan_init::vlan_parser_buggy();
    let q = buggy.state_by_name("parse_eth").unwrap();
    let outcome = check_and_cross_validate(&buggy, q, &buggy, q, Options::default())
        .expect("cross-validation must succeed");
    assert_confirmed_witness("buggy vlan self-comparison", &outcome);
    let w = outcome.witness().unwrap();
    assert_ne!(w.left_store, w.right_store, "stores must differ: {w}");
}

#[test]
fn every_cross_family_inequivalence_is_witnessed() {
    // Parsers from different case studies accept different languages; every
    // such refutation must carry a confirmed witness. (Early-stop finds
    // these quickly, so a handful of pairs keeps the test fast.)
    let rearrangement = leapfrog_suite::utility::state_rearrangement_benchmark();
    let speculative = mpls::mpls_benchmark();
    let vlan = vlan_init::vlan_init_benchmark();
    let pairs = [
        (
            "state_rearrangement vs mpls",
            &rearrangement.left,
            rearrangement.left_start,
            &speculative.left,
            speculative.left_start,
        ),
        (
            "mpls reference vs vlan",
            &speculative.left,
            speculative.left_start,
            &vlan.left,
            vlan.left_start,
        ),
    ];
    for (name, left, ql, right, qr) in pairs {
        let outcome = check_and_cross_validate(left, ql, right, qr, Options::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!outcome.is_equivalent(), "{name}: expected a refutation");
        assert_confirmed_witness(name, &outcome);
    }
}

#[test]
fn applicability_mutations_are_witnessed() {
    // Mutate each applicability parser by redirecting its start state's
    // first select case to reject; the mutant must be refuted against the
    // original with a confirmed witness.
    for bench in applicability::all_benchmarks(Scale::Small) {
        let original = bench.left.clone();
        let mut mutated = original.clone();
        mutate_first_case_to_reject(&mut mutated);
        let ql = bench.left_start;
        let outcome = check_and_cross_validate(&original, ql, &mutated, ql, Options::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            !outcome.is_equivalent(),
            "{}: mutant must be refuted",
            bench.name
        );
        assert_confirmed_witness(bench.name, &outcome);
    }
}

/// Redirects the first state-changing select case found to reject,
/// guaranteeing a language change on a reachable path.
fn mutate_first_case_to_reject(aut: &mut leapfrog_p4a::Automaton) {
    use leapfrog_p4a::ast::{Target, Transition};
    for q in aut.state_ids() {
        if let Transition::Select { cases, .. } = &aut.state(q).trans {
            if let Some(idx) = cases
                .iter()
                .position(|c| matches!(c.target, Target::State(_)))
            {
                aut.redirect_case(q, idx, Target::Reject);
                return;
            }
        }
    }
    panic!("no select case to mutate");
}

#[test]
fn relational_violation_yields_init_relation_witness() {
    // A relational query that genuinely fails: require two never-written
    // headers to agree at acceptance. The engine must confirm the witness
    // through the violated initial conjunct, not through acceptance.
    let a = leapfrog_p4a::surface::parse(
        "parser A { state s { extract(g, 1); goto accept } header h : 2; }",
    )
    .unwrap();
    let q = a.state_by_name("s").unwrap();
    let mut checker = Checker::new(&a, q, &a, q, Options::default());
    let sum = checker.sum_info();
    let hl = sum.automaton.header_by_name("l.h").unwrap();
    let hr = sum.automaton.header_by_name("r.h").unwrap();
    let init = vec![ConfRel {
        guard: TemplatePair::new(Template::accept(), Template::accept()),
        vars: vec![],
        phi: Pure::eq(BitExpr::Hdr(Side::Left, hl), BitExpr::Hdr(Side::Right, hr)),
    }];
    checker.replace_init(init);
    let outcome = checker.run();
    assert_confirmed_witness("uninitialized store correspondence", &outcome);
    let w = outcome.witness().unwrap();
    match &w.disagreement {
        Disagreement::InitRelation { relation, .. } => {
            assert_eq!(
                relation.guard,
                TemplatePair::new(Template::accept(), Template::accept())
            );
        }
        other => panic!("expected an init-relation disagreement, got {other:?}"),
    }
    assert!(checker.stats().witnesses_confirmed >= 1);
}

#[test]
fn witness_stats_are_recorded() {
    let (sloppy, strict) = sloppy_strict::sloppy_strict_parsers();
    let ql = sloppy.state_by_name(sloppy_strict::SLOPPY_START).unwrap();
    let qr = strict.state_by_name(sloppy_strict::STRICT_START).unwrap();
    let mut checker = Checker::new(&sloppy, ql, &strict, qr, Options::default());
    let outcome = checker.run();
    assert!(!outcome.is_equivalent());
    let stats = checker.stats();
    assert_eq!(stats.witnesses_confirmed, 1, "{}", stats.summary());
    assert_eq!(stats.witnesses_unconfirmed, 0);
    assert!(stats.summary().contains("witnesses=1/1"));
}
