//! End-to-end integration: every Table 2 benchmark (small scale) runs
//! through the full pipeline — sum construction, reachability, worklist,
//! SMT — and produces a certificate that the independent checker accepts.

use leapfrog::{certificate, Checker, Options};
use leapfrog_bench::rows::standard_benchmarks;
use leapfrog_suite::differential::agree_on_words;
use leapfrog_suite::Scale;

#[test]
fn all_standard_benchmarks_verify_and_certify() {
    for bench in standard_benchmarks(Scale::Small) {
        let mut checker = Checker::new(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            Options::default(),
        );
        let outcome = checker.run();
        let cert = match outcome {
            leapfrog::Outcome::Equivalent(cert) => cert,
            other => panic!("{}: expected equivalence, got {other:?}", bench.name),
        };
        assert!(
            cert.standard_init,
            "{}: expected a language-equivalence proof",
            bench.name
        );
        certificate::check(checker.sum_automaton(), &cert)
            .unwrap_or_else(|e| panic!("{}: certificate rejected: {e}", bench.name));
    }
}

#[test]
fn verified_benchmarks_also_agree_empirically() {
    // Equivalence proofs and random testing must never contradict.
    for bench in standard_benchmarks(Scale::Small) {
        assert!(
            agree_on_words(
                &bench.left,
                bench.left_start,
                &bench.right,
                bench.right_start,
                &[0, 8, 16, 32, 64, 112, 160, 240, 272, 400],
                40,
                0xabc,
            ),
            "{}: random packets disagree with the equivalence proof",
            bench.name
        );
    }
}

#[test]
fn cross_validation_harness_accepts_equivalent_benchmarks() {
    // The differential harness wraps the checker with explicit-semantics
    // validation for either verdict; on proven-equivalent pairs it must
    // return the equivalence unchallenged. (Two benchmarks keep this
    // binary's runtime reasonable; the refutation side is exercised by
    // tests/witnesses.rs.)
    for bench in standard_benchmarks(Scale::Small).into_iter().take(2) {
        let outcome = leapfrog_suite::differential::check_and_cross_validate(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            Options::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(outcome.is_equivalent(), "{}", bench.name);
    }
}

#[test]
fn ablation_settings_agree_on_a_small_benchmark() {
    // All four optimization settings must compute the same verdict.
    let bench = &standard_benchmarks(Scale::Small)[0]; // state rearrangement
    for (leaps, reach_pruning) in [(true, true), (false, true), (true, false)] {
        let options = Options {
            leaps,
            reach_pruning,
            ..Options::default()
        };
        let mut checker = Checker::new(
            &bench.left,
            bench.left_start,
            &bench.right,
            bench.right_start,
            options,
        );
        assert!(
            checker.run().is_equivalent(),
            "leaps={leaps} pruning={reach_pruning} changed the verdict"
        );
    }
}
