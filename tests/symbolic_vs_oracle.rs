//! Differential testing of the decision procedure itself: random small
//! parser pairs are checked symbolically and compared against exhaustive
//! enumeration of all packets up to a length bound.
//!
//! Soundness direction: if the symbolic checker proves equivalence, no
//! enumerated packet may distinguish the parsers (for any sampled store).
//! Refutation direction: if enumeration finds a distinguishing packet, the
//! symbolic checker must report non-equivalence.

use leapfrog::checker::check_language_equivalence;
use leapfrog_bitvec::BitVec;
use leapfrog_p4a::ast::{Automaton, Expr, Pattern, StateId, Target};
use leapfrog_p4a::builder::Builder;
use leapfrog_p4a::semantics::{Config, Store};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Generates a random parser: 1–3 states, headers of 1–3 bits, selects
/// over extracted headers with random exact/wildcard cases.
fn random_parser(rng: &mut Rng, tag: &str) -> Automaton {
    let num_states = 1 + rng.below(3);
    let mut b = Builder::new();
    let states: Vec<StateId> = (0..num_states)
        .map(|i| b.state(format!("{tag}{i}")))
        .collect();
    for (i, &q) in states.iter().enumerate() {
        let width = 1 + rng.below(3);
        let h = b.header(format!("{tag}h{i}"), width);
        let ops = vec![b.extract(h)];
        let any_target = |rng: &mut Rng| -> Target {
            match rng.below(4) {
                0 => Target::Accept,
                1 => Target::Reject,
                _ => Target::State(states[rng.below(num_states)]),
            }
        };
        let trans = if rng.below(3) == 0 {
            b.goto(any_target(rng))
        } else {
            let ncases = 1 + rng.below(3);
            let cases: Vec<(Vec<Pattern>, Target)> = (0..ncases)
                .map(|_| {
                    let pat = if rng.below(4) == 0 {
                        Pattern::Wildcard
                    } else {
                        Pattern::Exact(BitVec::from_u64(rng.next() & ((1 << width) - 1), width))
                    };
                    (vec![pat], any_target(rng))
                })
                .collect();
            b.select(vec![Expr::hdr(h)], cases)
        };
        b.define(q, ops, trans);
    }
    b.build().expect("generated parser is well-formed")
}

/// Exhaustively compares the two parsers on all words up to `max_len`
/// under several random store pairs; returns a distinguishing word if any.
fn exhaustive_disagreement(
    left: &Automaton,
    ql: StateId,
    right: &Automaton,
    qr: StateId,
    max_len: usize,
    rng: &mut Rng,
) -> Option<BitVec> {
    let stores: Vec<(Store, Store)> = (0..4)
        .map(|_| {
            (
                Store::random(left, || rng.next()),
                Store::random(right, || rng.next()),
            )
        })
        .collect();
    for len in 0..=max_len {
        for w in 0u64..(1u64 << len) {
            let word = BitVec::from_u64(w, len);
            for (sl, sr) in &stores {
                let al = Config::with_store(ql, sl.clone()).accepts_chunked(left, &word);
                let ar = Config::with_store(qr, sr.clone()).accepts_chunked(right, &word);
                if al != ar {
                    return Some(word);
                }
            }
        }
    }
    None
}

#[test]
fn symbolic_checker_agrees_with_exhaustive_oracle() {
    let mut rng = Rng(0x1eaf_f709);
    let mut equivalent_seen = 0;
    let mut inequivalent_seen = 0;
    for round in 0..40 {
        let left = random_parser(&mut rng, "a");
        let right = random_parser(&mut rng, "b");
        let ql = StateId(0);
        let qr = StateId(0);
        let outcome = check_language_equivalence(&left, ql, &right, qr);
        let verdict = outcome.is_equivalent();
        if !verdict {
            // Every refutation of a standard language-equivalence query
            // must lift into a confirmed witness: concrete stores plus a
            // packet the explicit semantics genuinely disagree on.
            leapfrog_suite::differential::confirm_refutation(&outcome)
                .unwrap_or_else(|e| panic!("round {round}: witness unconfirmed: {e}"));
        }
        let counterexample = exhaustive_disagreement(&left, ql, &right, qr, 9, &mut rng);
        match (&counterexample, verdict) {
            (Some(w), true) => panic!(
                "round {round}: symbolic checker proved equivalence but word {w} \
                 distinguishes the parsers"
            ),
            (None, true) => equivalent_seen += 1,
            (Some(_), false) => inequivalent_seen += 1,
            (None, false) => {
                // Inconclusive for the oracle: the refutation may need a
                // longer word or a specific store — but the confirmed
                // witness above already demonstrates it concretely.
                inequivalent_seen += 1;
            }
        }
    }
    // The generator must exercise both verdicts for the test to mean much.
    assert!(
        equivalent_seen >= 3,
        "only {equivalent_seen} equivalent pairs generated"
    );
    assert!(
        inequivalent_seen >= 3,
        "only {inequivalent_seen} inequivalent pairs generated"
    );
}

#[test]
fn self_comparison_of_store_independent_parsers_verifies() {
    // Parsers whose selects only scrutinize same-state extracted headers
    // are store-independent, so self-comparison must always verify.
    let mut rng = Rng(0xfeedbead);
    for round in 0..15 {
        let a = random_parser(&mut rng, "s");
        let verdict = check_language_equivalence(&a, StateId(0), &a, StateId(0));
        assert!(
            verdict.is_equivalent(),
            "round {round}: self-comparison failed for a store-independent parser"
        );
    }
}
