//! Integration tests for the hwgen pipeline: compile → back-translate →
//! prove equivalence, on the utility parsers and the Edge scenario. Also
//! demonstrates that the validator *catches* a deliberately miscompiled
//! table.

use leapfrog::checker::check_language_equivalence;
use leapfrog_hwgen::{back_translate, compile, HwBudget, HwTarget};
use leapfrog_suite::applicability::edge;
use leapfrog_suite::utility::{mpls, state_rearrangement};
use leapfrog_suite::Scale;

fn validate_roundtrip(aut: &leapfrog_p4a::Automaton, start: &str, budget: &HwBudget) {
    let q = aut.state_by_name(start).unwrap();
    let hw = compile(aut, q, budget).expect("compiles");
    let (back, back_start) = back_translate(&hw);
    let bq = back.state_by_name(&back_start).unwrap();
    let outcome = check_language_equivalence(aut, q, &back, bq);
    assert!(
        outcome.is_equivalent(),
        "round trip changed the language: {outcome:?}"
    );
}

#[test]
fn mpls_reference_roundtrip_validates() {
    validate_roundtrip(&mpls::reference(), "q1", &HwBudget::default());
}

#[test]
fn mpls_vectorized_roundtrip_validates() {
    validate_roundtrip(&mpls::vectorized(), "q3", &HwBudget::default());
}

#[test]
fn state_rearrangement_roundtrip_validates_with_splitting() {
    // A 48-bit budget forces the 96-bit combined state to split.
    let budget = HwBudget {
        max_advance: 48,
        max_branch_bits: 16,
    };
    validate_roundtrip(&state_rearrangement::combined(), "parse_combined", &budget);
    validate_roundtrip(&state_rearrangement::reference(), "parse_ip", &budget);
}

#[test]
fn edge_small_roundtrip_validates() {
    validate_roundtrip(&edge(Scale::Small), "parse_eth", &HwBudget::default());
}

#[test]
fn validator_catches_a_miscompiled_table() {
    let aut = mpls::reference();
    let q = aut.state_by_name("q1").unwrap();
    let mut hw = compile(&aut, q, &HwBudget::default()).unwrap();
    // Corrupt the table: redirect the first state-changing row to reject.
    let row = hw
        .entries
        .iter_mut()
        .find(|e| matches!(e.next, HwTarget::State(_)))
        .expect("some row changes state");
    row.next = HwTarget::Reject;
    let (back, back_start) = back_translate(&hw);
    let bq = back.state_by_name(&back_start).unwrap();
    let outcome = check_language_equivalence(&aut, q, &back, bq);
    assert!(
        !outcome.is_equivalent(),
        "the validator accepted a miscompiled parser"
    );
    // The refutation must carry a confirmed witness: a concrete packet the
    // original parser and the miscompiled hardware tables disagree on.
    let w = leapfrog_suite::differential::confirm_refutation(&outcome)
        .expect("miscompilation witness must confirm");
    assert!(
        w.check(),
        "witness replay must reproduce the miscompilation"
    );
}
